"""Driver for Fig. 13: rekey bandwidth overhead under the seven protocols
of Table 2.

Workload (Section 4.3): ``N`` users join the group on the GT-ITM
topology; then the key server processes ``churn`` joins and ``churn``
leaves in one rekey interval and generates one rekey message (the paper
uses N=1024 and 256+256 — deliberately heavy churn).  Measured, in
encryptions: received per user, forwarded per user, and carried per
network link.

Protocol-specific accounting:

* **P1/P2** — rekey message of the modified key tree multicast over
  T-mesh, without/with the splitting scheme.
* **P3/P4** — cluster-heuristic message over T-mesh without/with
  splitting, plus each leader's pairwise-encrypted group-key unicasts to
  its cluster members.
* **P0'/P1'** — original-key-tree message over NICE; P1' splits using
  per-subtree needed-sets (the O(N) downstream state of Section 2.6).
* **P0** — original-key-tree message over an IP-multicast source tree:
  every user receives the full message; each tree link carries it once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..alm.ipmulticast import ip_multicast_link_counts
from ..alm.nice import NiceHierarchy, nice_multicast
from ..core.ids import Id, IdScheme
from ..core.membership import Group
from ..core.splitting import run_split_rekey, run_unsplit_rekey
from ..core.tmesh import rekey_session
from ..keytree.cluster import ClusterRekeyingTree
from ..keytree.modified_tree import ModifiedKeyTree
from ..keytree.original_tree import OriginalKeyTree
from ..metrics.bandwidth import (
    BandwidthSample,
    alm_split_bandwidth,
    alm_unsplit_bandwidth,
)
from ..net.gtitm import TransitStubTopology
from .common import build_group, build_nice, server_host_of
from .config import SCHEME, current_scale

PROTOCOL_ORDER = ("P0", "P0'", "P1'", "P1", "P2", "P3", "P4")


@dataclass
class ProtocolBandwidth:
    """Fig.-13 measurements for one protocol."""

    protocol: str
    message_size: int
    sample: BandwidthSample

    def fraction_users_below(self, threshold: float) -> float:
        loads = np.maximum(self.sample.received, self.sample.forwarded)
        return float(np.mean(loads <= threshold)) if loads.size else 1.0

    def max_received(self) -> float:
        return float(self.sample.received.max()) if self.sample.received.size else 0.0

    def max_forwarded(self) -> float:
        return float(self.sample.forwarded.max()) if self.sample.forwarded.size else 0.0

    def max_link(self) -> float:
        if self.sample.link_counts is None or not self.sample.link_counts.size:
            return 0.0
        return float(self.sample.link_counts.max())

    def fraction_loaded_links_below(self, threshold: float) -> float:
        counts = self.sample.link_counts
        if counts is None:
            return 1.0
        loaded = counts[counts > 0]
        if not loaded.size:
            return 1.0
        return float(np.mean(loaded <= threshold))


@dataclass
class BandwidthExperiment:
    """All seven protocols measured on one workload."""

    num_users: int
    churn: int
    results: Dict[str, ProtocolBandwidth]

    def render(self) -> str:
        lines = [
            f"Fig 13 — rekey bandwidth overhead "
            f"(GT-ITM, {self.num_users} users, {self.churn}+{self.churn} churn)",
            f"{'proto':>5s} {'msg':>6s} {'max recv':>9s} {'max fwd':>9s} "
            f"{'%users<=10':>11s} {'max link':>9s} {'%links<=10':>11s}",
        ]
        for name in PROTOCOL_ORDER:
            if name not in self.results:
                continue
            r = self.results[name]
            lines.append(
                f"{name:>5s} {r.message_size:>6d} {r.max_received():>9.0f} "
                f"{r.max_forwarded():>9.0f} {r.fraction_users_below(10):>10.0%} "
                f"{r.max_link():>9.0f} {r.fraction_loaded_links_below(10):>10.0%}"
            )
        return "\n".join(lines)


def _sample_from_dicts(
    received: Dict, forwarded: Dict, link_counts: Optional[np.ndarray]
) -> BandwidthSample:
    """Assemble per-user arrays; the key server (the null ID) is not a
    user and is excluded from the Fig. 13 populations."""
    from ..core.ids import NULL_ID

    members = sorted(
        m for m in (set(received) | set(forwarded)) if m != NULL_ID
    )
    return BandwidthSample(
        np.asarray([received.get(m, 0.0) for m in members], dtype=float),
        np.asarray([forwarded.get(m, 0.0) for m in members], dtype=float),
        link_counts,
    )


def run_bandwidth_experiment(
    num_users: int = 1024,
    churn: int = 256,
    seed: int = 0,
    scheme: IdScheme = SCHEME,
    topology: Optional[TransitStubTopology] = None,
    protocols: Sequence[str] = PROTOCOL_ORDER,
) -> BandwidthExperiment:
    """Run Fig. 13 on one workload and return all protocol measurements."""
    scale = current_scale()
    if topology is None:
        topology = TransitStubTopology(
            num_hosts=num_users + churn + 1,
            params=scale.gtitm_params,
            seed=seed,
        )
    server = server_host_of(topology)
    rng = np.random.default_rng(seed)

    # ---- base group: N joins ------------------------------------------
    group = build_group(topology, num_users, seed, scheme=scheme)
    base_ids = list(group.user_ids)
    join_order_hosts = [group.records[uid].host for uid in base_ids]
    hierarchy = build_nice(topology, join_order_hosts, seed)

    modified = ModifiedKeyTree(scheme)
    cluster = ClusterRekeyingTree(scheme)
    for uid in sorted(base_ids, key=lambda u: group.records[u].join_time):
        modified.request_join(uid)
        cluster.request_join(uid)
    modified.process_batch()
    cluster.process_batch()
    original = OriginalKeyTree(degree=4)
    original.initialize_balanced(base_ids)

    # ---- churn: `churn` joins + `churn` leaves in one interval ---------
    joiner_hosts = list(range(num_users, num_users + churn))
    leavers = [
        base_ids[int(i)]
        for i in rng.choice(len(base_ids), size=min(churn, len(base_ids)), replace=False)
    ]
    events: List[Tuple[str, object]] = [("join", h) for h in joiner_hosts] + [
        ("leave", uid) for uid in leavers
    ]
    rng.shuffle(events)
    for kind, payload in events:
        if kind == "join":
            result = group.join(int(payload))
            uid = result.record.user_id
            hierarchy.join(int(payload))
            modified.request_join(uid)
            cluster.request_join(uid)
            original.request_join(("new", uid))
        else:
            uid = payload
            host = group.records[uid].host
            group.leave(uid)
            hierarchy.leave(host)
            modified.request_leave(uid)
            cluster.request_leave(uid)
            original.request_leave(uid)

    message_modified = modified.process_batch()
    cluster_result = cluster.process_batch()
    original_result = original.process_batch(rng)
    original_users = original.users

    results: Dict[str, ProtocolBandwidth] = {}
    wanted = set(protocols)

    # ---- T-mesh protocols ----------------------------------------------
    if wanted & {"P1", "P2", "P3", "P4"}:
        session = rekey_session(group.server_table, group.tables, topology)
    if "P1" in wanted:
        acct = run_unsplit_rekey(session, message_modified.rekey_cost)
        results["P1"] = ProtocolBandwidth(
            "P1",
            message_modified.rekey_cost,
            _sample_from_dicts(
                acct.received, acct.forwarded, acct.link_counts(topology).counts
            ),
        )
    if "P2" in wanted:
        acct = run_split_rekey(session, message_modified)
        results["P2"] = ProtocolBandwidth(
            "P2",
            message_modified.rekey_cost,
            _sample_from_dicts(
                acct.received, acct.forwarded, acct.link_counts(topology).counts
            ),
        )
    for name, split in (("P3", False), ("P4", True)):
        if name not in wanted:
            continue
        if split:
            acct = run_split_rekey(session, cluster_result.message)
        else:
            acct = run_unsplit_rekey(session, cluster_result.rekey_cost)
        received = dict(acct.received)
        forwarded = dict(acct.forwarded)
        counter = acct.link_counts(topology)
        # Leaders unicast the new group key to their cluster members.
        for unicast in cluster_result.unicasts:
            leader_host = group.records[unicast.leader].host
            forwarded[unicast.leader] = (
                forwarded.get(unicast.leader, 0) + unicast.num_encryptions
            )
            for member in unicast.members:
                received[member] = received.get(member, 0) + 1
                counter.add_path(
                    topology.path_links(leader_host, group.records[member].host), 1
                )
        results[name] = ProtocolBandwidth(
            name,
            cluster_result.rekey_cost,
            _sample_from_dicts(received, forwarded, counter.counts),
        )

    # ---- NICE protocols --------------------------------------------------
    if wanted & {"P0'", "P1'"}:
        nice_session = nice_multicast(hierarchy, topology, server_host=server)
    if "P0'" in wanted:
        results["P0'"] = ProtocolBandwidth(
            "P0'",
            original_result.rekey_cost,
            alm_unsplit_bandwidth(nice_session, original_result.rekey_cost, topology),
        )
    if "P1'" in wanted:
        needed = _original_tree_needs(original, original_result, group)
        results["P1'"] = ProtocolBandwidth(
            "P1'",
            original_result.rekey_cost,
            alm_split_bandwidth(
                nice_session, needed, original_result.rekey_cost, topology
            ),
        )

    # ---- IP multicast -----------------------------------------------------
    if "P0" in wanted:
        receiver_hosts = [group.records[uid].host for uid in group.user_ids]
        counter = ip_multicast_link_counts(
            topology, server, receiver_hosts, original_result.rekey_cost
        )
        received = {h: float(original_result.rekey_cost) for h in receiver_hosts}
        forwarded = {h: 0.0 for h in receiver_hosts}
        results["P0"] = ProtocolBandwidth(
            "P0",
            original_result.rekey_cost,
            _sample_from_dicts(received, forwarded, counter.counts),
        )

    return BandwidthExperiment(num_users=num_users, churn=churn, results=results)


def _original_tree_needs(
    tree: OriginalKeyTree, batch_result, group: Group
) -> Dict[int, Set[int]]:
    """Per-host needed-encryption indices for splitting over NICE: a user
    needs encryption ``{x}_{c}`` iff node ``c`` is on the path from its
    u-node to the root of the original key tree."""
    by_node: Dict[int, List[int]] = {}
    for index, enc in enumerate(batch_result.encryptions):
        by_node.setdefault(enc.encrypting_node, []).append(index)
    needed: Dict[int, Set[int]] = {}
    for user in tree.users:
        uid = user[1] if isinstance(user, tuple) else user
        record = group.records.get(uid)
        if record is None:
            continue  # user left the group after the batch snapshot
        indices: Set[int] = set()
        for node in tree.path_nodes(user):
            indices.update(by_node.get(node, ()))
        needed[record.host] = indices
    return needed
