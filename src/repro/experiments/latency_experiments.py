"""Drivers for Figs. 6–11: rekey/data path latency, T-mesh vs NICE.

Figs. 6–8 (rekey): the key server multicasts a rekey message after all
joins terminate — in T-mesh via the FORWARD routine from its one-row
table, in NICE by unicasting to the NICE root (the topological center)
and flowing top-down.  Figs. 9–11 (data): a random user is the sender.

Each run permutes the join order (the paper varies joining times across
its 100 runs) and collects the three Section-4.1 metrics for every user;
results are ranked per run and averaged per rank across runs, which is
exactly how the paper builds its Fig. 6 curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..alm.nice import nice_multicast
from ..core.tmesh import data_session, rekey_session
from ..metrics.latency import LatencySample, alm_latency, tmesh_latency
from ..metrics.stats import RankedRuns, ranked_across_runs
from ..net.topology import Topology
from .common import build_group, build_nice, build_topology, join_order, server_host_of
from .config import SCHEME
from .parallel import ParallelRunner, replication_seeds, worker_context


@dataclass
class SchemeLatency:
    """Multi-run latency results for one multicast scheme."""

    stress: RankedRuns
    app_delay: RankedRuns
    rdp: RankedRuns

    def fraction_rdp_below(self, threshold: float) -> float:
        return float(np.mean(self.rdp.mean <= threshold))

    def median_delay(self) -> float:
        return float(np.median(self.app_delay.mean))

    def p95_stress(self) -> float:
        return float(np.percentile(self.stress.mean, 95))


@dataclass
class LatencyComparison:
    """One latency figure: T-mesh vs NICE on one topology/size."""

    figure: str
    mode: str  # "rekey" | "data"
    topology_kind: str
    num_users: int
    runs: int
    tmesh: SchemeLatency
    nice: SchemeLatency

    def headlines(self) -> Dict[str, float]:
        """The quantities the paper quotes in its Fig. 6 discussion."""
        return {
            "tmesh_rdp_lt2": self.tmesh.fraction_rdp_below(2.0),
            "tmesh_rdp_lt3": self.tmesh.fraction_rdp_below(3.0),
            "nice_rdp_lt2": self.nice.fraction_rdp_below(2.0),
            "nice_rdp_lt3": self.nice.fraction_rdp_below(3.0),
            "tmesh_median_delay_ms": self.tmesh.median_delay(),
            "nice_median_delay_ms": self.nice.median_delay(),
            "tmesh_p95_stress": self.tmesh.p95_stress(),
            "nice_p95_stress": self.nice.p95_stress(),
        }

    def render(self) -> str:
        h = self.headlines()
        lines = [
            f"{self.figure} — {self.mode} path latency "
            f"({self.topology_kind}, {self.num_users} users, {self.runs} runs)",
            f"{'metric':38s} {'T-mesh':>10s} {'NICE':>10s}",
            f"{'users with RDP < 2':38s} {h['tmesh_rdp_lt2']:>9.0%} {h['nice_rdp_lt2']:>9.0%}",
            f"{'users with RDP < 3':38s} {h['tmesh_rdp_lt3']:>9.0%} {h['nice_rdp_lt3']:>9.0%}",
            f"{'median app-layer delay (ms)':38s} {h['tmesh_median_delay_ms']:>10.1f} {h['nice_median_delay_ms']:>10.1f}",
            f"{'95th-pct user stress':38s} {h['tmesh_p95_stress']:>10.1f} {h['nice_p95_stress']:>10.1f}",
        ]
        return "\n".join(lines)


def _latency_run(run_seed: int) -> Tuple[np.ndarray, ...]:
    """One replication of a latency figure, a pure function of its seed.

    Reads the run-invariant inputs (topology, mode, ...) from the
    :mod:`.parallel` worker context so the same function serves both the
    serial loop and forked pool workers without re-pickling the topology
    per task."""
    topology, num_users, mode, scheme, thresholds, server = worker_context()
    order = join_order(num_users, run_seed)
    group = build_group(
        topology, num_users, run_seed, scheme=scheme, thresholds=thresholds
    )
    hierarchy = build_nice(topology, order, run_seed)
    rng = np.random.default_rng(run_seed + 7)

    if mode == "rekey":
        t_sess = rekey_session(group.server_table, group.tables, topology)
        n_sess = nice_multicast(hierarchy, topology, server_host=server)
    else:
        sender_host = int(order[int(rng.integers(0, len(order)))])
        sender_id = next(
            uid for uid, rec in group.records.items() if rec.host == sender_host
        )
        t_sess = data_session(sender_id, group.tables, topology)
        n_sess = nice_multicast(hierarchy, topology, source_host=sender_host)

    t_sample = tmesh_latency(t_sess, topology)
    n_sample = alm_latency(n_sess, topology)
    return (
        t_sample.stress,
        t_sample.app_delay,
        t_sample.rdp,
        n_sample.stress,
        n_sample.app_delay,
        n_sample.rdp,
    )


def run_latency_experiment(
    figure: str,
    topology_kind: str,
    num_users: int,
    mode: str = "rekey",
    runs: int = 3,
    seed: int = 0,
    scheme=SCHEME,
    thresholds: Optional[Sequence[float]] = None,
    runner: Optional[ParallelRunner] = None,
) -> LatencyComparison:
    """Run one of Figs. 6–11.

    ``mode="rekey"`` sources the multicast at the key server;
    ``mode="data"`` at a random user.  The topology is fixed across runs;
    the join order (and data sender) varies per run.

    ``runner`` distributes the replications over worker processes; the
    default runs them serially in process.  Results are identical either
    way — each run depends only on its derived seed.
    """
    if mode not in ("rekey", "data"):
        raise ValueError(f"mode must be rekey or data, got {mode!r}")
    topology = build_topology(topology_kind, num_users, seed)
    server = server_host_of(topology)
    if runner is None:
        runner = ParallelRunner(processes=1)
    context = (topology, num_users, mode, scheme, thresholds, server)
    results = runner.map(
        _latency_run, replication_seeds(seed, runs), context=context
    )
    t_stress = [r[0] for r in results]
    t_delay = [r[1] for r in results]
    t_rdp = [r[2] for r in results]
    n_stress = [r[3] for r in results]
    n_delay = [r[4] for r in results]
    n_rdp = [r[5] for r in results]

    return LatencyComparison(
        figure=figure,
        mode=mode,
        topology_kind=topology_kind,
        num_users=num_users,
        runs=runs,
        tmesh=SchemeLatency(
            ranked_across_runs(t_stress),
            ranked_across_runs(t_delay),
            ranked_across_runs(t_rdp),
        ),
        nice=SchemeLatency(
            ranked_across_runs(n_stress),
            ranked_across_runs(n_delay),
            ranked_across_runs(n_rdp),
        ),
    )
