"""Experiment drivers regenerating every table and figure of the paper's
evaluation (Section 4)."""

from .config import SCALES, Scale, current_scale
from .common import (
    CentralizedController,
    build_group,
    build_nice,
    build_topology,
    join_order,
    server_host_of,
)
from .latency_experiments import (
    LatencyComparison,
    SchemeLatency,
    run_latency_experiment,
)
from .parallel import ParallelRunner, replication_seeds
from .rekey_cost import (
    RekeyCostPoint,
    RekeyCostSurface,
    default_grid,
    run_rekey_cost,
)
from .bandwidth_experiment import (
    BandwidthExperiment,
    ProtocolBandwidth,
    run_bandwidth_experiment,
)
from .thresholds import (
    PAPER_VARIANTS,
    ThresholdSweep,
    VariantLatency,
    run_threshold_sweep,
)
from .interval_sweep import IntervalPoint, IntervalSweep, run_interval_sweep

__all__ = [
    "SCALES",
    "Scale",
    "current_scale",
    "CentralizedController",
    "build_group",
    "build_nice",
    "build_topology",
    "join_order",
    "server_host_of",
    "LatencyComparison",
    "SchemeLatency",
    "run_latency_experiment",
    "ParallelRunner",
    "replication_seeds",
    "RekeyCostPoint",
    "RekeyCostSurface",
    "default_grid",
    "run_rekey_cost",
    "BandwidthExperiment",
    "ProtocolBandwidth",
    "run_bandwidth_experiment",
    "PAPER_VARIANTS",
    "ThresholdSweep",
    "VariantLatency",
    "run_threshold_sweep",
    "IntervalPoint",
    "IntervalSweep",
    "run_interval_sweep",
]
