"""Batch-rekeying interval sweep (extension).

The system rekeys periodically: requests arriving during an interval are
batched (Section 1, citing the batch-rekeying line of work).  This
experiment quantifies the batching trade-off on the modified key tree:
with Poisson join/leave arrivals at combined rate ``rate`` per second,
longer intervals amortize shared path updates — the cost per processed
request falls — while the interval length bounds how stale group access
control may be.

Not a paper figure; an extension flagged in DESIGN.md.  The companion
benchmark asserts the expected shape: per-request amortized cost strictly
decreases as the interval grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.ids import Id, IdScheme
from ..keytree.modified_tree import ModifiedKeyTree
from ..net.topology import Topology
from .common import CentralizedController, build_topology
from .config import SCHEME


@dataclass(frozen=True)
class IntervalPoint:
    """Average costs at one rekey-interval length."""

    interval_s: float
    mean_requests_per_interval: float
    mean_cost_per_interval: float
    cost_per_request: float


@dataclass
class IntervalSweep:
    num_users: int
    rate_per_s: float
    points: List[IntervalPoint]

    def render(self) -> str:
        lines = [
            f"Interval sweep — batching efficiency "
            f"(N={self.num_users}, churn rate {self.rate_per_s:.2f}/s)",
            f"{'interval':>9s} {'req/interval':>13s} {'cost/interval':>14s} "
            f"{'cost/request':>13s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.interval_s:>8.0f}s {p.mean_requests_per_interval:>13.1f} "
                f"{p.mean_cost_per_interval:>14.1f} {p.cost_per_request:>13.2f}"
            )
        return "\n".join(lines)


def run_interval_sweep(
    num_users: int = 256,
    intervals: Sequence[float] = (8.0, 32.0, 128.0, 512.0),
    rate_per_s: float = 0.5,
    horizon_s: float = 4096.0,
    seed: int = 0,
    scheme: IdScheme = SCHEME,
    topology: Topology = None,
) -> IntervalSweep:
    """Simulate Poisson churn over ``horizon_s`` seconds for each interval
    length and average the modified tree's per-batch rekey cost."""
    if topology is None:
        topology = build_topology("gtitm", num_users, seed)
    points: List[IntervalPoint] = []
    for interval_s in intervals:
        rng = np.random.default_rng(seed)
        controller = CentralizedController(scheme, topology, seed)
        hosts = rng.permutation(topology.num_hosts - 1)[:num_users]
        base_ids = [controller.join(int(h)) for h in hosts]
        tree = ModifiedKeyTree(scheme)
        for uid in base_ids:
            tree.request_join(uid)
        tree.process_batch()

        present = list(base_ids)
        costs: List[int] = []
        request_counts: List[int] = []
        num_batches = max(1, int(horizon_s / interval_s))
        for _ in range(num_batches):
            expected = rate_per_s * interval_s
            n_requests = int(rng.poisson(expected))
            requests = 0
            pending_leave = set()
            for _ in range(n_requests):
                if present and rng.random() < 0.5:
                    candidates = [u for u in present if u not in pending_leave]
                    if not candidates:
                        continue
                    victim = candidates[int(rng.integers(0, len(candidates)))]
                    tree.request_leave(victim)
                    pending_leave.add(victim)
                    present.remove(victim)
                else:
                    host = int(rng.integers(0, topology.num_hosts - 1))
                    uid = controller.join(host)
                    tree.request_join(uid)
                    present.append(uid)
                requests += 1
            for victim in pending_leave:
                controller.leave(victim)
            costs.append(tree.process_batch().rekey_cost)
            request_counts.append(requests)
        total_requests = sum(request_counts)
        points.append(
            IntervalPoint(
                interval_s=interval_s,
                mean_requests_per_interval=float(np.mean(request_counts)),
                mean_cost_per_interval=float(np.mean(costs)),
                cost_per_request=(
                    sum(costs) / total_requests if total_requests else 0.0
                ),
            )
        )
    return IntervalSweep(num_users, rate_per_s, points)
