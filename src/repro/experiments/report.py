"""Generate the paper-vs-measured record (EXPERIMENTS.md).

Runs every figure driver at a chosen scale and renders a markdown report
pairing each paper claim with the regenerated numbers.  Invoked by
``python -m repro report`` (see :mod:`repro.__main__`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Tuple

from .bandwidth_experiment import run_bandwidth_experiment
from .config import Scale, current_scale
from .latency_experiments import run_latency_experiment
from .rekey_cost import default_grid, run_rekey_cost
from .thresholds import run_threshold_sweep

#: Paper-claimed reference points, quoted from Section 4.
PAPER_CLAIMS = {
    "fig6": (
        "T-mesh app-layer delay is about half of NICE's for the majority of "
        "users; 78% of T-mesh users have RDP < 2 and 95% < 3 (NICE: 23% and "
        "47%); user-stress distributions comparable."
    ),
    "fig7_8": (
        "The relative performance of T-mesh to NICE has no significant "
        "change from PlanetLab to GT-ITM, at 256 and 1024 joins."
    ),
    "fig9_11": (
        "For data transport the relative performance of T-mesh to NICE is "
        "similar to rekey transport."
    ),
    "fig12": (
        "The modified key tree has a larger rekey cost than the original "
        "tree for the same churn; with the cluster heuristic the cost "
        "becomes smaller than the original's when the fraction of leaving "
        "users is small."
    ),
    "fig13": (
        "Splitting reduces rekey bandwidth for >90% of users and links "
        "from several thousand encryptions to fewer than ten; no T-mesh "
        "user exceeds ~350 encryptions while NICE still has users "
        "forwarding 1000-10000 and links carrying up to ~4000."
    ),
    "fig14": (
        "T-mesh latency is not sensitive to the chosen delay thresholds "
        "(D, R_1..R_{D-1})."
    ),
}


@dataclass
class ReportSection:
    title: str
    paper_claim: str
    measured: str
    elapsed_s: float


#: Monotonic interval clock for the per-driver runtime footnotes.  The
#: timings are presentation-only (they never feed a golden trace or the
#: oracle), and the clock is injectable so tests can pin them: the old
#: ``time.time()`` pair here was the wall-clock leak that motivated the
#: ``determinism-wall-clock`` lint rule (docs/STATIC_ANALYSIS.md).
Clock = Callable[[], float]


def _timed(fn: Callable, *args, _clock: Clock = perf_counter, **kwargs) -> Tuple[object, float]:
    start = _clock()
    result = fn(*args, **kwargs)
    return result, _clock() - start


def generate_sections(
    scale: Scale, clock: Optional[Clock] = None
) -> List[ReportSection]:
    """Run every experiment at the given scale.

    ``clock`` (defaulting to :func:`time.perf_counter`) supplies the
    per-driver elapsed times; inject a fake for deterministic reports.
    """
    clock = clock if clock is not None else perf_counter
    sections: List[ReportSection] = []

    fig6, dt = _timed(
        run_latency_experiment,
        "Fig 6",
        "planetlab",
        scale.planetlab_users,
        mode="rekey",
        runs=scale.latency_runs,
        seed=6,
        _clock=clock,
    )
    sections.append(
        ReportSection("Fig. 6 — rekey latency, PlanetLab",
                      PAPER_CLAIMS["fig6"], fig6.render(), dt)
    )

    for fig, users in (("Fig 7", scale.gtitm_users_small),
                       ("Fig 8", scale.gtitm_users_large)):
        cmp, dt = _timed(
            run_latency_experiment,
            fig,
            "gtitm",
            users,
            mode="rekey",
            runs=max(1, scale.latency_runs // 2),
            seed=7,
            _clock=clock,
        )
        sections.append(
            ReportSection(f"{fig} — rekey latency, GT-ITM ({users} joins)",
                          PAPER_CLAIMS["fig7_8"], cmp.render(), dt)
        )

    for fig, kind, users in (
        ("Fig 9", "planetlab", scale.planetlab_users),
        ("Fig 10", "gtitm", scale.gtitm_users_small),
        ("Fig 11", "gtitm", scale.gtitm_users_large),
    ):
        cmp, dt = _timed(
            run_latency_experiment,
            fig,
            kind,
            users,
            mode="data",
            runs=max(1, scale.latency_runs // 2),
            seed=9,
            _clock=clock,
        )
        sections.append(
            ReportSection(f"{fig} — data latency, {kind} ({users} joins)",
                          PAPER_CLAIMS["fig9_11"], cmp.render(), dt)
        )

    surface, dt = _timed(
        run_rekey_cost,
        num_users=scale.gtitm_users_large,
        grid=default_grid(scale.gtitm_users_large, scale.rekey_cost_grid),
        runs=scale.rekey_cost_runs,
        seed=12,
        _clock=clock,
    )
    sections.append(
        ReportSection("Fig. 12 — rekey cost vs (J, L)",
                      PAPER_CLAIMS["fig12"], surface.render(), dt)
    )

    bandwidth, dt = _timed(
        run_bandwidth_experiment,
        num_users=scale.gtitm_users_large,
        churn=scale.bandwidth_churn,
        seed=13,
        _clock=clock,
    )
    sections.append(
        ReportSection("Fig. 13 — rekey bandwidth overhead",
                      PAPER_CLAIMS["fig13"], bandwidth.render(), dt)
    )

    sweep, dt = _timed(
        run_threshold_sweep,
        num_users=scale.planetlab_users,
        seed=14,
        _clock=clock,
    )
    sections.append(
        ReportSection("Fig. 14 — delay-threshold sensitivity",
                      PAPER_CLAIMS["fig14"], sweep.render(), dt)
    )
    return sections


def render_markdown(sections: List[ReportSection], scale: Scale) -> str:
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Generated by `python -m repro report` at scale `{scale.name}` "
        f"(set `REPRO_SCALE=paper` for the publication's sizes).",
        "",
        "Absolute numbers are not expected to match the paper — the "
        "substrate is a synthetic-topology simulator, not the authors' "
        "2004 testbed — but the *shape* of every result (who wins, by "
        "roughly what factor, where crossovers fall) reproduces, and the "
        "benchmark suite asserts each shape.",
        "",
    ]
    for section in sections:
        lines.extend(
            [
                f"## {section.title}",
                "",
                f"**Paper:** {section.paper_claim}",
                "",
                "**Measured:**",
                "",
                "```",
                section.measured,
                "```",
                "",
                f"_(driver runtime: {section.elapsed_s:.1f} s)_",
                "",
            ]
        )
    return "\n".join(lines)


def main(scale: Optional[Scale] = None, clock: Optional[Clock] = None) -> str:
    scale = scale if scale is not None else current_scale()
    return render_markdown(generate_sections(scale, clock=clock), scale)
