"""Driver for Fig. 12: rekey cost vs number of joins and leaves.

The paper's setup: 1024 users join on the GT-ITM topology; after the
joins terminate the key server processes ``J`` joins and ``L`` leaves
(0 <= J, L <= 1024) in one rekey interval and generates one rekey
message.  Rekey cost = encryptions in that message, averaged over 20
runs per (J, L) point.  Three curves:

* (a) the modified key tree's average rekey cost;
* (b) modified-tree cost minus original-tree cost (WGL degree 4, starting
  full and balanced, ToN'03 batch processing) — positive: the modified
  tree updates more keys because a joining u-node can only reuse a
  departed position when the IDs share the first D-1 digits;
* (c) cluster-heuristic cost minus original-tree cost — negative for
  small leave fractions, since only leader churn rekeys.

IDs for the base group and the J joiners come from the centralized
controller (exactly the paper's efficiency shortcut).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.id_tree import IdTree
from ..core.ids import Id, IdScheme
from ..keytree.cluster import ClusterRekeyingTree
from ..keytree.modified_tree import ModifiedKeyTree
from ..keytree.original_tree import OriginalKeyTree
from ..net.topology import Topology
from .common import CentralizedController, build_topology
from .config import SCHEME


@dataclass
class RekeyCostPoint:
    """Average rekey costs at one (J, L) grid point."""

    joins: int
    leaves: int
    modified: float
    original: float
    cluster: float

    @property
    def modified_minus_original(self) -> float:
        return self.modified - self.original

    @property
    def cluster_minus_original(self) -> float:
        return self.cluster - self.original


@dataclass
class RekeyCostSurface:
    """The three Fig. 12 surfaces on a (J, L) grid."""

    num_users: int
    runs: int
    points: List[RekeyCostPoint]

    def point(self, joins: int, leaves: int) -> RekeyCostPoint:
        for p in self.points:
            if p.joins == joins and p.leaves == leaves:
                return p
        raise KeyError((joins, leaves))

    def render(self) -> str:
        lines = [
            f"Fig 12 — rekey cost vs (J, L); N={self.num_users}, "
            f"{self.runs} runs per point",
            f"{'J':>6s} {'L':>6s} {'modified':>10s} {'original':>10s} "
            f"{'cluster':>10s} {'mod-orig':>10s} {'clu-orig':>10s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.joins:>6d} {p.leaves:>6d} {p.modified:>10.1f} "
                f"{p.original:>10.1f} {p.cluster:>10.1f} "
                f"{p.modified_minus_original:>10.1f} "
                f"{p.cluster_minus_original:>10.1f}"
            )
        return "\n".join(lines)


def _base_population(
    controller: CentralizedController, num_users: int, rng: np.random.Generator
) -> List[Tuple[Id, int]]:
    """Join the base group through the controller; returns (id, host)."""
    hosts = rng.permutation(controller.topology.num_hosts - 1)[:num_users]
    return [(controller.join(int(h)), int(h)) for h in hosts]


def _one_run(
    scheme: IdScheme,
    topology: Topology,
    num_users: int,
    grid: Sequence[Tuple[int, int]],
    seed: int,
) -> Dict[Tuple[int, int], Tuple[int, int, int]]:
    """One simulation run: one base population, then each (J, L) point
    processed against fresh copies of the three key trees."""
    rng = np.random.default_rng(seed)
    controller = CentralizedController(scheme, topology, seed)
    base = _base_population(controller, num_users, rng)
    base_ids = [uid for uid, _ in base]

    results: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
    for joins, leaves in grid:
        # Fresh controller state per grid point, seeded identically, so
        # the joiner IDs are assigned against the same base tree.
        point_rng = np.random.default_rng(seed + 7919 * (joins + 1) + leaves)
        point_controller = CentralizedController(scheme, topology, seed + 13)
        point_controller.id_tree = IdTree(scheme, base_ids)
        point_controller.records = dict(controller.records)

        # -- modified tree ------------------------------------------------
        modified = ModifiedKeyTree(scheme)
        for uid in base_ids:
            modified.request_join(uid)
        modified.process_batch()  # settle the base interval

        # -- cluster heuristic ---------------------------------------------
        cluster = ClusterRekeyingTree(scheme)
        for uid in base_ids:
            cluster.request_join(uid)
        cluster.process_batch()

        # -- original tree --------------------------------------------------
        original = OriginalKeyTree(degree=4)
        original.initialize_balanced(base_ids)

        # Same churn for all three trees.
        leave_ids = [
            base_ids[int(i)]
            for i in point_rng.choice(len(base_ids), size=leaves, replace=False)
        ]
        join_hosts = point_rng.integers(0, topology.num_hosts - 1, size=joins)
        join_ids: List[Id] = []
        taken = set(base_ids)
        for host in join_hosts:
            uid = point_controller.join(int(host))
            join_ids.append(uid)
            taken.add(uid)

        for uid in join_ids:
            modified.request_join(uid)
            cluster.request_join(uid)
            original.request_join(("new", uid))
        for uid in leave_ids:
            modified.request_leave(uid)
            cluster.request_leave(uid)
            original.request_leave(uid)

        cost_modified = modified.process_batch().rekey_cost
        cost_cluster = cluster.process_batch().rekey_cost
        cost_original = original.process_batch(point_rng).rekey_cost
        results[(joins, leaves)] = (cost_modified, cost_original, cost_cluster)
    return results


def default_grid(num_users: int, resolution: int) -> List[Tuple[int, int]]:
    """A (J, L) grid covering [0, N] per axis, like the paper's surface."""
    axis = [int(round(x)) for x in np.linspace(0, num_users, resolution)]
    return [(j, l) for j in axis for l in axis]


def run_rekey_cost(
    num_users: int = 1024,
    grid: Sequence[Tuple[int, int]] = (),
    runs: int = 5,
    seed: int = 0,
    scheme: IdScheme = SCHEME,
    topology: Topology = None,
) -> RekeyCostSurface:
    """Run the Fig. 12 experiment."""
    if topology is None:
        topology = build_topology("gtitm", max(num_users, 1), seed)
    if not grid:
        grid = default_grid(num_users, 4)
    totals: Dict[Tuple[int, int], np.ndarray] = {
        point: np.zeros(3) for point in grid
    }
    for run in range(runs):
        outcome = _one_run(scheme, topology, num_users, grid, seed + 101 * run)
        for point, costs in outcome.items():
            totals[point] += np.asarray(costs, dtype=float)
    points = [
        RekeyCostPoint(
            joins=j,
            leaves=l,
            modified=float(totals[(j, l)][0] / runs),
            original=float(totals[(j, l)][1] / runs),
            cluster=float(totals[(j, l)][2] / runs),
        )
        for j, l in grid
    ]
    return RekeyCostSurface(num_users=num_users, runs=runs, points=points)
