"""A parallel replication runner for multi-run experiments.

The paper's figures average metrics over up to 100 independent runs that
differ only in their seed.  Replications are embarrassingly parallel, so
this module fans ``(seed, run)`` tasks over a ``fork``-based
multiprocessing pool while keeping the results *byte-identical* to the
serial loop:

* every task is a pure function of its seed — workers rebuild their RNGs
  from the task seed and share no mutable state;
* heavyweight read-only context (the topology with its dense RTT cache)
  is handed to workers through a module global inherited across ``fork``,
  never pickled per task;
* results come back in task order (``Pool.map`` preserves ordering), so
  downstream averaging sees the same sequence as a serial loop.

``tests/test_perf_equivalence.py`` asserts the byte-identity, including
over the CSV exports.  On single-CPU hosts (or with ``processes=1``) the
runner degrades to an in-process loop over the very same worker function,
so there is one code path for the science and one knob for the speed.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..trace import hooks as _trace_hooks

#: Read-only per-run context, set in the parent before the pool forks and
#: inherited by every worker process.
_WORKER_CONTEXT: Any = None


def worker_context() -> Any:
    """The context object the current (worker or serial) run was given."""
    return _WORKER_CONTEXT


def _set_context(context: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


class _TracedTask:
    """Runs the inner worker with a fresh per-task
    :class:`~repro.trace.hooks.TraceContext` installed and returns
    ``(result, frozen trace)``.

    The parent merges the frozen traces back in task order, so the merged
    trace depends only on the task list — byte-identical whether the
    tasks ran serially in process or across forked workers (a forked
    worker inherits the parent's installed context object via the module
    slot, which this wrapper swaps out for the task's own child).
    """

    __slots__ = ("inner", "config")

    def __init__(self, inner: Callable[[Any], Any], config: Dict[str, Any]):
        self.inner = inner
        self.config = config

    def __call__(self, task: Any) -> Any:
        child = _trace_hooks.TraceContext(**self.config)
        previous = _trace_hooks.ACTIVE
        _trace_hooks.ACTIVE = child
        try:
            result = self.inner(task)
        finally:
            _trace_hooks.ACTIVE = previous
        return result, child.freeze()


class ParallelRunner:
    """Order-preserving map of a worker over per-replication tasks.

    ``processes=None`` uses every CPU; ``processes=1`` (or a single-CPU
    machine, or fewer tasks than workers would help) runs serially in
    process.  Either way the same worker function runs with the same
    context, so results do not depend on the degree of parallelism.
    """

    __slots__ = ("processes",)

    def __init__(self, processes: Optional[int] = None):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes

    def resolved_processes(self, num_tasks: int) -> int:
        procs = self.processes if self.processes is not None else (os.cpu_count() or 1)
        return max(1, min(procs, num_tasks))

    def map(
        self,
        worker: Callable[[Any], Any],
        tasks: Iterable[Any],
        context: Any = None,
    ) -> List[Any]:
        task_list = list(tasks)
        if not task_list:
            return []
        tctx = _trace_hooks.ACTIVE
        if tctx is not None:
            # Each task traces into its own child context; payloads merge
            # back (in task order) after the map, so the trace is the
            # same for any degree of parallelism.
            worker = _TracedTask(worker, tctx.worker_config())
        procs = self.resolved_processes(len(task_list))
        if procs > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                procs = 1  # no fork on this platform: run in process
        _set_context(context)
        try:
            if procs <= 1:
                results = [worker(task) for task in task_list]
            else:
                # ProcessPoolExecutor rather than multiprocessing.Pool: a
                # worker that dies hard (os._exit, SIGKILL, segfault) raises
                # BrokenProcessPool here instead of hanging the parent, and a
                # worker exception — including a pickled InvariantViolation
                # with its reports — propagates from the map iterator.  The
                # chunking mirrors Pool.map's default so the task batching
                # (and thus worker-side execution order) is unchanged.
                chunksize, extra = divmod(len(task_list), procs * 4)
                if extra:
                    chunksize += 1
                with ProcessPoolExecutor(
                    max_workers=procs, mp_context=ctx
                ) as pool:
                    results = list(
                        pool.map(worker, task_list, chunksize=chunksize)
                    )
        finally:
            _set_context(None)
        if tctx is not None:
            results = tctx.merge_task_results(results)
        return results


def replication_seeds(seed: int, runs: int) -> List[int]:
    """The per-run seeds all multi-run drivers derive from a base seed
    (run ``r`` gets ``seed + 1000 * (r + 1)``, as the serial loops always
    did)."""
    return [seed + 1000 * (run + 1) for run in range(runs)]
