"""Experiment configuration: the paper's parameters and scaling.

Every simulation in the paper runs with ``D = 5``, ``B = 256``,
``K = 4``, ``R = (150, 30, 9, 3)`` ms, ``P = 10``, ``F = 90``-percentile,
and NICE clusters of 3–8 users.  Group sizes are 226 (PlanetLab), 256 and
1024 (GT-ITM).

Full paper sizes take minutes per experiment, so the benchmark suite runs
a scaled-down-but-faithful configuration by default.  Set the environment
variable ``REPRO_SCALE`` to ``paper`` / ``small`` / ``tiny`` to choose
(default ``small``); the experiment drivers also accept explicit sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.ids import IdScheme, PAPER_SCHEME
from ..net.gtitm import TransitStubParams


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for runtime."""

    name: str
    planetlab_users: int      # paper: 226 (227 hosts incl. the key server)
    gtitm_users_small: int    # paper: 256
    gtitm_users_large: int    # paper: 1024
    gtitm_params: TransitStubParams
    latency_runs: int         # paper: 100 runs for Fig. 6
    rekey_cost_runs: int      # paper: 20 runs per (J, L) point
    rekey_cost_grid: int      # grid resolution per axis for Fig. 12
    bandwidth_churn: int      # paper: 256 joins + 256 leaves for Fig. 13


PAPER_GTITM = TransitStubParams()  # ~4900 routers / ~13000 links

SMALL_GTITM = TransitStubParams(
    transit_domains=4,
    transit_per_domain=5,
    stubs_per_transit=3,
    stub_size=8,
)

TINY_GTITM = TransitStubParams(
    transit_domains=3,
    transit_per_domain=3,
    stubs_per_transit=2,
    stub_size=6,
)

SCALES = {
    "paper": Scale(
        name="paper",
        planetlab_users=226,
        gtitm_users_small=256,
        gtitm_users_large=1024,
        gtitm_params=PAPER_GTITM,
        latency_runs=20,
        rekey_cost_runs=20,
        rekey_cost_grid=5,
        bandwidth_churn=256,
    ),
    "small": Scale(
        name="small",
        planetlab_users=128,
        gtitm_users_small=128,
        gtitm_users_large=256,
        gtitm_params=SMALL_GTITM,
        latency_runs=5,
        rekey_cost_runs=5,
        rekey_cost_grid=4,
        bandwidth_churn=64,
    ),
    "tiny": Scale(
        name="tiny",
        planetlab_users=48,
        gtitm_users_small=48,
        gtitm_users_large=96,
        gtitm_params=TINY_GTITM,
        latency_runs=2,
        rekey_cost_runs=2,
        rekey_cost_grid=3,
        bandwidth_churn=24,
    ),
}


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}; expected one of {sorted(SCALES)}"
        ) from None


#: Convenience re-export of the paper's ID-space parameters.
SCHEME: IdScheme = PAPER_SCHEME
