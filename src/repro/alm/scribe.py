"""Scribe-style per-group multicast over the hypercube tables.

Scribe (and Bayeux) build one ALM tree per multicast group on top of a
Pastry/Tapestry-style prefix-routing substrate: members route a JOIN
toward the group's ID, and the union of routes — every member's parent
is its next prefix hop — forms a tree rooted at the group ID's
rendezvous member.  Section 5 discusses these systems; Section 2.6
argues that such lookup-oriented trees are a poor fit for rekey
splitting because tree positions ignore the key tree's structure.  This
module implements the scheme over our own neighbor tables so the
argument can be measured (see ``benchmarks/test_ablation_scribe.py``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.hypercube import route_toward
from ..core.ids import Id
from ..core.neighbor_table import NeighborTable, UserRecord
from ..net.topology import Topology
from .base import AlmEdge, AlmSessionResult


@dataclass
class ScribeGroup:
    """A per-group tree: every member's parent is its first prefix hop
    toward the group ID; the rendezvous member is the root."""

    group_id: Id
    root: Id
    parent: Dict[Id, Optional[Id]]
    children: Dict[Id, List[Id]]
    host_of: Dict[Id, int]

    def depth_of(self, member: Id) -> int:
        depth = 0
        node = member
        while self.parent[node] is not None:
            node = self.parent[node]
            depth += 1
        return depth


def build_scribe_group(
    group_id: Id,
    tables: Dict[Id, NeighborTable],
) -> ScribeGroup:
    """Build the group tree from every member's prefix route.

    Consistent tables make all routes converge on one rendezvous, so the
    parent pointers form a single tree (verified by the test suite).
    """
    parent: Dict[Id, Optional[Id]] = {}
    host_of: Dict[Id, int] = {}
    root: Optional[Id] = None
    for member_id, table in tables.items():
        host_of[member_id] = table.owner.host
        route = route_toward(table.owner, group_id, tables)
        if route.num_hops == 0:
            parent[member_id] = None
            root = member_id
        else:
            parent[member_id] = route.hops[1].user_id
    if root is None:
        raise ValueError("no rendezvous found (tables inconsistent?)")
    children: Dict[Id, List[Id]] = {}
    for member_id, up in parent.items():
        if up is not None:
            children.setdefault(up, []).append(member_id)
    return ScribeGroup(group_id, root, parent, children, host_of)


def scribe_multicast(
    group: ScribeGroup,
    topology: Topology,
    source_host: Optional[int] = None,
    server_host: Optional[int] = None,
    processing_delay: float = 0.0,
) -> AlmSessionResult:
    """Multicast over the Scribe tree.

    Rekey mode (``server_host``): the key server unicasts to the
    rendezvous root; the message flows down the tree.  Data mode
    (``source_host``): the source's copy first routes up to the root
    (its parent chain), then floods down — Scribe's anycast-to-root
    dissemination."""
    if (source_host is None) == (server_host is None):
        raise ValueError("pass exactly one of source_host / server_host")
    origin = server_host if server_host is not None else source_host
    result = AlmSessionResult(sender_host=origin)
    counter = itertools.count()
    queue: List = []

    def push(src_host: int, dst: Id, now: float, down: bool) -> None:
        arrival = (
            now
            + processing_delay
            + topology.one_way_delay(src_host, group.host_of[dst])
        )
        result.edges.append(
            AlmEdge(src_host, group.host_of[dst], now, arrival)
        )
        heapq.heappush(queue, (arrival, next(counter), src_host, dst, down))

    source_id: Optional[Id] = None
    if server_host is not None:
        push(server_host, group.root, 0.0, True)
    else:
        source_id = next(
            (uid for uid, host in group.host_of.items() if host == source_host),
            None,
        )
        if source_id is None:
            raise ValueError(f"host {source_host} is not a group member")
        up = group.parent[source_id]
        if up is not None:
            push(source_host, up, 0.0, False)
        # the source also floods its own subtree directly
        for child in group.children.get(source_id, ()):
            push(source_host, child, 0.0, True)

    delivered: Set[Id] = set()
    while queue:
        arrival, _, src_host, member, down = heapq.heappop(queue)
        if member == source_id:
            continue
        if member in delivered:
            result.duplicate_copies[group.host_of[member]] = (
                result.duplicate_copies.get(group.host_of[member], 0) + 1
            )
            continue
        delivered.add(member)
        host = group.host_of[member]
        result.arrival[host] = arrival
        result.upstream[host] = src_host
        if not down:
            # still travelling up: continue toward the root and flood
            # the branches we pass (excluding where we came from)
            up = group.parent[member]
            if up is not None:
                push(host, up, arrival, False)
        for child in group.children.get(member, ()):
            if group.host_of[child] != src_host:
                push(host, child, arrival, True)
    return result
