"""Reliable T-mesh delivery: NACK-based selective repair over FORWARD.

Theorem 1 gives *exactly-once* delivery over 1-consistent tables — but
only without losses.  This module degrades that guarantee gracefully to
*at-least-once, deduplicated* under an injected
:class:`~repro.faults.FaultPlan` (or any lossy network), in the spirit of
NACK-oriented reliable multicast (NORM, RFC 5740):

* the source stamps every payload with a **sequence number**; a receiver
  tracks one stream per ``(source, forwarding level)`` — the level at
  which the T-mesh delivers the stream to it — and detects holes from
  the sequence numbers it does see;
* the source follows the burst with a few **heartbeat / watermark**
  rounds (NORM's ``CMD(FLUSH)``) carrying the highest sequence number,
  flooded over the same FORWARD paths, so trailing losses are detected
  even when no later data packet arrives;
* a receiver with holes sends a **selective NACK** (the explicit list of
  missing sequence numbers) to its *upstream* — the neighbor it last
  heard the stream from — after a short reordering grace period, and
  retries with **exponential backoff**; after a few upstream attempts it
  escalates to the source itself, and a bounded retry budget guarantees
  the event queue always drains;
* every forwarder keeps a **bounded repair buffer** of the packets it has
  seen and answers NACKs with unicast retransmissions, so repair traffic
  stays inside the topological region the T-mesh already confines the
  stream to (local recovery);
* a repaired hole is **re-forwarded once** down the repairing node's own
  rows: when a forwarder recovers a packet its whole subtree was missing,
  the repair heals the subtree instead of stranding it behind further
  NACK rounds (NORM's local-repair multicast).  The per-node
  ``(source, seq)`` seen-set bounds this — each node forwards each packet
  at most once — and suppresses every duplicate before the application
  sees it, which is what keeps the application contract "exactly one
  delivered copy".

All repair accounting flows through
:class:`repro.metrics.faults.RepairStats` so experiments can report
delivery ratio and repair overhead as a function of loss rate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.ids import Id, NULL_ID
from ..core.neighbor_table import NeighborTable, UserRecord
from ..faults.plan import FaultPlan
from ..metrics.faults import RepairStats
from ..net.scheduling import (
    SchedulingBackend,
    Transport,
    TransportNode,
    create_backend,
)
from ..net.topology import Topology
from ..trace import hooks as _trace_hooks


# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TmeshData:
    """One payload copy: multicast (first transmission, forwarded by
    FORWARD) or unicast repair (``retransmit=True``, never forwarded)."""

    source: Id
    source_host: int
    seq: int
    forward_level: int
    payload: Any
    retransmit: bool = False


@dataclass(frozen=True)
class TmeshHeartbeat:
    """Watermark flood: 'source has sent everything up to
    ``highest_seq``' — NORM's flush command, forwarded like data."""

    source: Id
    source_host: int
    highest_seq: int
    forward_level: int
    round: int


@dataclass(frozen=True)
class TmeshNack:
    """Selective repair request: the explicit missing sequence numbers.
    Answered with unicast retransmissions by whoever buffers them."""

    source: Id
    source_host: int
    missing: Tuple[int, ...]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the repair protocol (simulated-time units are ms)."""

    #: reordering grace before the first NACK for a detected hole
    nack_delay: float = 10.0
    #: first retransmission timeout; doubles per retry (``backoff``)
    rto: float = 80.0
    backoff: float = 2.0
    #: NACKs aimed at the upstream before escalating to the source
    max_upstream_nacks: int = 3
    #: NACKs aimed at the source before giving the hole up
    max_source_nacks: int = 8
    #: watermark rounds the source sends after the burst
    heartbeat_rounds: int = 12
    heartbeat_interval: float = 50.0
    #: packets per source a node keeps for answering NACKs
    repair_buffer: int = 256
    #: master switch: ``False`` degrades to plain (lossy) FORWARD
    repair_enabled: bool = True
    #: route around next hops known down (Section 2.3's K > 1 recovery:
    #: the next neighbor of the same table entry replaces a dead primary)
    use_backups: bool = True


@dataclass
class _RepairState:
    """Per-source hole tracking at one receiver."""

    missing: Set[int] = field(default_factory=set)
    attempts: int = 0
    event: Optional[object] = None  # pending sim Event, if any


class ReliableTmeshNode(TransportNode):
    """A member (or the key server) speaking the reliable T-mesh
    protocol.  ``table`` is its neighbor table — one row for the key
    server, ``D`` rows for a user (Section 2.2).

    The node depends only on the scheduling seam: any
    :class:`~repro.net.scheduling.Transport` (and the
    :class:`~repro.net.scheduling.Scheduler` behind it) can carry the
    protocol — the discrete event simulator and the standalone event
    loop are interchangeable backends."""

    def __init__(
        self,
        transport: Transport,
        record: UserRecord,
        table: NeighborTable,
        config: Optional[ReliabilityConfig] = None,
        down_check=None,
    ):
        super().__init__(transport, record.host)
        self.record = record
        self.table = table
        self.config = config if config is not None else ReliabilityConfig()
        #: liveness oracle for Section-2.3 backup routing — models the
        #: probing-based failure detection of the distributed layer
        self._down_check = down_check if down_check is not None else (lambda host: False)
        self.stats = RepairStats()
        #: payloads handed to the application, per source, arrival order
        self.delivered: Dict[Id, List[Tuple[int, Any]]] = {}
        self._seen: Dict[Id, Set[int]] = {}
        self._buffer: Dict[Id, "OrderedDict[int, TmeshData]"] = {}
        self._upstream: Dict[Id, int] = {}
        self._level: Dict[Id, int] = {}  # (source, forwarding-level) stream
        self._highest: Dict[Id, int] = {}
        self._hb_seen: Dict[Id, Set[int]] = {}
        self._repairs: Dict[Id, _RepairState] = {}
        self._next_seq = 0  # when this node is a source

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def source_id(self) -> Id:
        return self.record.user_id

    def delivered_payloads(self, source: Id) -> List[Any]:
        """Application deliveries from ``source`` in sequence order."""
        return [p for _, p in sorted(self.delivered.get(source, []))]

    def missing_from(self, source: Id) -> List[int]:
        """Sequence numbers known missing (unrepaired holes)."""
        seen = self._seen.get(source, set())
        highest = self._highest.get(source, -1)
        return [s for s in range(highest + 1) if s not in seen]

    # ------------------------------------------------------------------
    # Sending (this node as the stream source)
    # ------------------------------------------------------------------
    def send_stream(self, payloads: List[Any]) -> Tuple[int, int]:
        """Multicast ``payloads`` reliably; returns the (first, last)
        sequence numbers used."""
        first = self._next_seq
        source = self.source_id
        seen = self._seen.setdefault(source, set())
        for payload in payloads:
            seq = self._next_seq
            self._next_seq += 1
            msg = TmeshData(source, self.host, seq, 0, payload)
            seen.add(seq)
            self._remember(msg)
            self._highest[source] = seq
            self._forward(msg)
        last = self._next_seq - 1
        if self.config.repair_enabled:
            for rnd in range(self.config.heartbeat_rounds):
                self.scheduler.schedule(
                    (rnd + 1) * self.config.heartbeat_interval,
                    lambda rnd=rnd, last=last: self._emit_heartbeat(rnd, last),
                )
        return first, last

    def _emit_heartbeat(self, rnd: int, highest: int) -> None:
        hb = TmeshHeartbeat(self.source_id, self.host, highest, 0, rnd)
        self._hb_seen.setdefault(self.source_id, set()).add(rnd)
        self._flood(hb)

    # ------------------------------------------------------------------
    # FORWARD (Fig. 2) over the live network
    # ------------------------------------------------------------------
    def _rows(self, level: int) -> range:
        num_digits = self.table.scheme.num_digits
        if self.table.is_server_table:
            return range(0, 1) if level == 0 else range(0, 0)
        return range(level, num_digits)

    def _next_hop(self, i: int, j: int, primary: UserRecord) -> Optional[UserRecord]:
        """The (i,j)-primary, or — when it is known down and backups are
        on — the closest live neighbor of the same entry (Section 2.3)."""
        if not self.config.use_backups or not self._down_check(primary.host):
            return primary
        return next(
            (r for r in self.table.entry(i, j) if not self._down_check(r.host)),
            None,
        )

    def _forward(self, msg: TmeshData) -> None:
        for i in self._rows(msg.forward_level):
            for j, primary in self.table.row_primaries(i):
                nbr = self._next_hop(i, j, primary)
                if nbr is None:
                    continue
                self.stats.data_sent += 1
                self.send(
                    nbr.host,
                    TmeshData(
                        msg.source,
                        msg.source_host,
                        msg.seq,
                        i + 1,
                        msg.payload,
                    ),
                )

    def _flood(self, hb: TmeshHeartbeat) -> None:
        for i in self._rows(hb.forward_level):
            for j, primary in self.table.row_primaries(i):
                nbr = self._next_hop(i, j, primary)
                if nbr is None:
                    continue
                self.stats.heartbeats_sent += 1
                self.send(
                    nbr.host,
                    TmeshHeartbeat(
                        hb.source,
                        hb.source_host,
                        hb.highest_seq,
                        i + 1,
                        hb.round,
                    ),
                )

    # ------------------------------------------------------------------
    # Receive paths
    # ------------------------------------------------------------------
    def on_message(self, src: int, payload: Any) -> None:
        if isinstance(payload, TmeshData):
            self._on_data(src, payload)
        elif isinstance(payload, TmeshHeartbeat):
            self._on_heartbeat(src, payload)
        elif isinstance(payload, TmeshNack):
            self._on_nack(src, payload)

    def _on_data(self, src: int, msg: TmeshData) -> None:
        source = msg.source
        self._upstream[source] = src
        seen = self._seen.setdefault(source, set())
        if msg.seq in seen:
            self.stats.duplicates_suppressed += 1
            return
        seen.add(msg.seq)
        self._remember(msg)
        self.stats.data_delivered += 1
        self.delivered.setdefault(source, []).append((msg.seq, msg.payload))
        if not msg.retransmit:
            # First delivery over the mesh fixes this node's
            # (source, forwarding-level) stream; repairs do not.
            self._level.setdefault(source, msg.forward_level)
            self._forward(msg)
        else:
            # A repaired hole heals the subtree: re-forward it once over
            # this node's own rows, as if it had arrived on the mesh.
            # The seen-set above bounds this to one forward per packet.
            level = self._level.get(source)
            if level is not None:
                self._forward(
                    TmeshData(
                        source, msg.source_host, msg.seq, level, msg.payload
                    )
                )
        self._note_highest(source, msg.source_host, msg.seq)

    def _on_heartbeat(self, src: int, hb: TmeshHeartbeat) -> None:
        source = hb.source
        self._upstream.setdefault(source, src)
        # A node that only ever hears heartbeats still learns its stream
        # level, so it can re-forward repaired packets downstream.
        self._level.setdefault(source, hb.forward_level)
        rounds = self._hb_seen.setdefault(source, set())
        if hb.round not in rounds:
            rounds.add(hb.round)
            self._flood(hb)
        self._note_highest(source, hb.source_host, hb.highest_seq)

    def _on_nack(self, src: int, nack: TmeshNack) -> None:
        """Serve what the repair buffer holds; keep chasing the rest
        ourselves so repairs cascade up the delivery tree."""
        buffer = self._buffer.get(nack.source, OrderedDict())
        unserved: List[int] = []
        for seq in nack.missing:
            held = buffer.get(seq)
            if held is not None:
                self.stats.retransmissions += 1
                self.send(
                    src,
                    TmeshData(
                        held.source,
                        held.source_host,
                        held.seq,
                        self.table.scheme.num_digits,
                        held.payload,
                        retransmit=True,
                    ),
                )
            else:
                unserved.append(seq)
        if unserved and nack.source != self.source_id:
            self._note_highest(nack.source, nack.source_host, max(unserved))

    # ------------------------------------------------------------------
    # Hole detection and NACK scheduling
    # ------------------------------------------------------------------
    def _remember(self, msg: TmeshData) -> None:
        buffer = self._buffer.setdefault(msg.source, OrderedDict())
        buffer[msg.seq] = msg
        while len(buffer) > self.config.repair_buffer:
            buffer.popitem(last=False)

    def _note_highest(self, source: Id, source_host: int, seq: int) -> None:
        previous = self._highest.get(source, -1)
        if seq > previous:
            self._highest[source] = seq
        if not self.config.repair_enabled or source == self.source_id:
            return
        seen = self._seen.setdefault(source, set())
        holes = {
            s for s in range(self._highest[source] + 1) if s not in seen
        }
        if not holes:
            return
        state = self._repairs.setdefault(source, _RepairState())
        state.missing |= holes
        self._schedule_nack(source, source_host, self.config.nack_delay)

    def _schedule_nack(self, source: Id, source_host: int, delay: float) -> None:
        state = self._repairs[source]
        if state.event is not None:
            return  # a NACK round is already pending

        def fire() -> None:
            state.event = None
            seen = self._seen.get(source, set())
            state.missing -= seen
            if not state.missing:
                state.attempts = 0
                return
            budget = self.config.max_upstream_nacks + self.config.max_source_nacks
            if state.attempts >= budget:
                self.stats.gave_up += len(state.missing)
                state.missing.clear()
                return
            if (
                state.attempts < self.config.max_upstream_nacks
                and source in self._upstream
            ):
                target = self._upstream[source]
                target_kind = "upstream"
            else:
                target = source_host
                target_kind = "source"
                self.stats.source_repairs += 1
            self.stats.nacks_sent += 1
            # One slot read per *repair round* — rounds only fire under
            # losses, so the fault-free path never reaches this.
            tctx = _trace_hooks.ACTIVE
            if tctx is not None:
                tctx.event(
                    "reliable.nack_round",
                    source=str(source),
                    requester_host=self.host,
                    attempt=state.attempts,
                    missing=len(state.missing),
                    target=target_kind,
                    time_ms=self.scheduler.now,
                )
                tctx.registry.inc("reliable.nack_rounds")
            self.send(
                target, TmeshNack(source, source_host, tuple(sorted(state.missing)))
            )
            state.attempts += 1
            retry = self.config.rto * (
                self.config.backoff ** min(state.attempts - 1, 6)
            )
            self._schedule_nack(source, source_host, retry)

        state.event = self.scheduler.schedule(delay, fire)


# ----------------------------------------------------------------------
# Session orchestration
# ----------------------------------------------------------------------
@dataclass
class ReliableOutcome:
    """What one reliable multicast achieved, per member and in total."""

    source: Id
    payloads: List[Any]
    delivered: Dict[Id, List[Any]]  # member -> payloads in seq order
    missing: Dict[Id, List[int]]  # member -> unrepaired holes
    stats: RepairStats  # aggregated over every node
    per_node: Dict[Id, RepairStats]

    @property
    def expected_deliveries(self) -> int:
        return len(self.payloads) * len(self.delivered)

    @property
    def delivery_ratio(self) -> float:
        if self.expected_deliveries == 0:
            return 1.0
        achieved = sum(
            min(len(got), len(self.payloads)) for got in self.delivered.values()
        )
        return achieved / self.expected_deliveries

    @property
    def duplicates_surfaced(self) -> int:
        """Application-level double deliveries (the contract says 0)."""
        extra = 0
        for got in self.delivered.values():
            counts: Dict[Any, int] = {}
            for payload in got:
                counts[payload] = counts.get(payload, 0) + 1
            extra += sum(c - 1 for c in counts.values())
        return extra

    def members_short(self) -> List[Id]:
        """Members that did not receive every payload."""
        want = len(self.payloads)
        return sorted(
            uid for uid, got in self.delivered.items() if len(got) < want
        )


class ReliableSession:
    """Build a live mesh of :class:`ReliableTmeshNode` from a static
    table configuration and run reliable multicasts through a fault plan.

    ``tables`` maps every member ID to its neighbor table (as built by
    :func:`repro.core.neighbor_table.build_consistent_tables`);
    ``server_table`` is the key server's one-row table for rekey
    transport.  The session owns its scheduling backend — ``backend``
    names one (``"simulator"`` is the discrete event simulator,
    ``"eventloop"`` the standalone virtual-clock loop; see
    :mod:`repro.net.scheduling`) or passes a pre-assembled
    :class:`~repro.net.scheduling.SchedulingBackend`.  Outcomes and
    traces are byte-identical across conforming backends.
    """

    def __init__(
        self,
        tables: Dict[Id, NeighborTable],
        server_table: NeighborTable,
        topology: Topology,
        plan: Optional[FaultPlan] = None,
        config: Optional[ReliabilityConfig] = None,
        backend: "str | SchedulingBackend" = "simulator",
    ):
        self.config = config if config is not None else ReliabilityConfig()
        self.plan = plan
        if isinstance(backend, str):
            backend = create_backend(backend, topology)
        self.backend = backend
        self.scheduler = backend.scheduler
        self.transport = backend.transport
        self.transport.install_faults(plan)
        down_check = None
        if plan is not None and self.config.use_backups:
            # the liveness oracle backing Section-2.3 backup routing
            down_check = lambda host: plan.is_down(host, self.scheduler.now)
        self.nodes: Dict[Id, ReliableTmeshNode] = {
            uid: ReliableTmeshNode(
                self.transport, table.owner, table, self.config, down_check
            )
            for uid, table in tables.items()
        }
        self.server = ReliableTmeshNode(
            self.transport, server_table.owner, server_table, self.config, down_check
        )

    @property
    def simulator(self):
        """Backward-compatible alias for the session's scheduler."""
        return self.scheduler

    @property
    def network(self) -> Transport:
        """Backward-compatible alias for the session's transport."""
        return self.transport

    def multicast(
        self,
        payloads: List[Any],
        sender: Optional[Id] = None,
        until: Optional[float] = None,
        max_events: int = 2_000_000,
    ) -> ReliableOutcome:
        """Run one reliable session: rekey transport when ``sender`` is
        ``None`` (the key server sends), data transport otherwise."""
        source_node = self.server if sender is None else self.nodes[sender]
        tctx = _trace_hooks.ACTIVE
        if tctx is None:
            source_node.send_stream(list(payloads))
            self.scheduler.run(until=until, max_events=max_events)
            return self.collect(source_node.source_id, list(payloads))
        with tctx.span(
            "reliable.multicast",
            source=str(source_node.source_id),
            payloads=len(payloads),
            members=len(self.nodes),
            lossy=self.plan is not None,
        ) as span:
            source_node.send_stream(list(payloads))
            self.scheduler.run(until=until, max_events=max_events)
            outcome = self.collect(source_node.source_id, list(payloads))
            span.set(
                delivery_ratio=round(outcome.delivery_ratio, 6),
                members_short=len(outcome.members_short()),
                duplicates_surfaced=outcome.duplicates_surfaced,
            )
        tctx.observe_reliable(outcome)
        return outcome

    def collect(self, source: Id, payloads: List[Any]) -> ReliableOutcome:
        receivers = {
            uid: node for uid, node in self.nodes.items() if uid != source
        }
        total = RepairStats()
        per_node: Dict[Id, RepairStats] = {}
        for uid, node in self.nodes.items():
            per_node[uid] = node.stats
            total.add(node.stats)
        total.add(self.server.stats)
        return ReliableOutcome(
            source=source,
            payloads=payloads,
            delivered={
                uid: node.delivered_payloads(source)
                for uid, node in receivers.items()
            },
            missing={
                uid: node.missing_from(source)
                for uid, node in receivers.items()
            },
            stats=total,
            per_node=per_node,
        )
