"""Application-layer multicast: the NICE / IP-multicast / Scribe
baselines the paper compares against, plus the NACK-repaired reliable
T-mesh transport (:mod:`repro.alm.reliable`)."""

from .base import AlmEdge, AlmSessionResult
from .nice import Cluster, NiceHierarchy, PAPER_NICE_K, nice_multicast
from .ipmulticast import (
    ip_multicast_link_counts,
    ip_multicast_session,
    ip_multicast_tree_links,
)
from .reliable import (
    ReliabilityConfig,
    ReliableOutcome,
    ReliableSession,
    ReliableTmeshNode,
    TmeshData,
    TmeshHeartbeat,
    TmeshNack,
)
from .scribe import ScribeGroup, build_scribe_group, scribe_multicast

__all__ = [
    "AlmEdge",
    "AlmSessionResult",
    "ReliabilityConfig",
    "ReliableOutcome",
    "ReliableSession",
    "ReliableTmeshNode",
    "TmeshData",
    "TmeshHeartbeat",
    "TmeshNack",
    "Cluster",
    "NiceHierarchy",
    "PAPER_NICE_K",
    "nice_multicast",
    "ip_multicast_link_counts",
    "ip_multicast_session",
    "ip_multicast_tree_links",
    "ScribeGroup",
    "build_scribe_group",
    "scribe_multicast",
]
