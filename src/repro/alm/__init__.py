"""Baseline ALM schemes the paper compares against: NICE and IP multicast."""

from .base import AlmEdge, AlmSessionResult
from .nice import Cluster, NiceHierarchy, PAPER_NICE_K, nice_multicast
from .ipmulticast import (
    ip_multicast_link_counts,
    ip_multicast_session,
    ip_multicast_tree_links,
)
from .scribe import ScribeGroup, build_scribe_group, scribe_multicast

__all__ = [
    "AlmEdge",
    "AlmSessionResult",
    "Cluster",
    "NiceHierarchy",
    "PAPER_NICE_K",
    "nice_multicast",
    "ip_multicast_link_counts",
    "ip_multicast_session",
    "ip_multicast_tree_links",
    "ScribeGroup",
    "build_scribe_group",
    "scribe_multicast",
]
