"""DVMRP-style IP multicast baseline (protocol P0 of Table 2).

The paper's P0 uses the IP multicast scheme of Wong–Gouda–Lam [23], based
on the DVMRP routing algorithm: a shortest-path source tree rooted at the
sender's router.  End hosts do no forwarding; the per-network-link cost of
a rekey multicast is one full message copy on every tree link, and each
user receives the full message exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..net.gtitm import TransitStubTopology
from ..net.routing import LinkStressCounter
from .base import AlmEdge, AlmSessionResult


def ip_multicast_tree_links(
    topology: TransitStubTopology,
    source_host: int,
    receiver_hosts: Sequence[int],
) -> Set[int]:
    """Physical links of the shortest-path multicast tree from the source
    to all receivers — the union of the routed paths (shared prefixes
    merge, which is exactly what makes it a tree)."""
    links: Set[int] = set()
    for host in receiver_hosts:
        if host != source_host:
            links.update(topology.path_links(source_host, host))
    return links


def ip_multicast_session(
    topology: TransitStubTopology,
    source_host: int,
    receiver_hosts: Sequence[int],
) -> AlmSessionResult:
    """Delivery record of an IP-multicast rekey: every receiver gets one
    copy at its unicast shortest-path delay (routers replicate in-network,
    so RDP is 1 and user stress is 0 for everyone)."""
    result = AlmSessionResult(sender_host=source_host)
    for host in receiver_hosts:
        if host == source_host:
            continue
        delay = topology.one_way_delay(source_host, host)
        result.arrival[host] = delay
        result.upstream[host] = source_host
        result.edges.append(AlmEdge(source_host, host, 0.0, delay))
    return result


def ip_multicast_link_counts(
    topology: TransitStubTopology,
    source_host: int,
    receiver_hosts: Sequence[int],
    message_size: int,
) -> LinkStressCounter:
    """Encryptions per physical link under IP multicast: each tree link
    carries the full rekey message once."""
    counter = LinkStressCounter(topology.num_links)
    for link in ip_multicast_tree_links(topology, source_host, receiver_hosts):
        counter.counts[link] += message_size
    return counter
