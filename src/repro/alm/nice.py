"""The NICE application-layer multicast protocol (Banerjee et al.,
SIGCOMM 2002), the ALM scheme the paper compares against.

NICE arranges hosts in a layered hierarchy.  Every host is in layer 0;
layer-``i`` hosts are partitioned into clusters of size ``[k, 3k-1]``
(the paper's simulations use *"three to eight users"*, i.e. ``k = 3``);
each cluster's leader is its graph-theoretic center (the member
minimizing the maximum RTT to the others) and also belongs to layer
``i+1``.  The top layer has a single cluster whose leader is the *root* —
the topological center of the group.

Joins descend from the root probing one cluster per layer and join the
layer-0 cluster of the closest leader found (the paper simulates NICE with
*sequential* joins, which it notes gives NICE at-least-as-good trees as
concurrent joins).  Cluster maintenance: split when a cluster exceeds
``3k-1`` members, merge with the nearest sibling when it falls below
``k``, and re-elect leaders on membership changes.

Data forwarding: a host that receives the message from a peer in cluster
``C`` forwards it to its peers in every other cluster it belongs to; the
source's copy enters the hierarchy at its local cluster leader (the paper:
the sender unicasts to the leader of its local cluster, then the message
traverses the tree bottom-up then top-down).  Rekey transport: the key
server unicasts the message to the root, and the message flows top-down.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..net.topology import Topology
from .base import AlmEdge, AlmSessionResult

#: NICE cluster parameter used by the paper: clusters of 3 to 8 users.
PAPER_NICE_K = 3


@dataclass
class Cluster:
    """One NICE cluster: a set of layer-``layer`` hosts and its leader."""

    layer: int
    members: Set[int] = field(default_factory=set)
    leader: int = -1


class NiceHierarchy:
    """An incrementally maintained NICE hierarchy over a topology."""

    def __init__(self, topology: Topology, k: int = PAPER_NICE_K):
        if k < 2:
            raise ValueError("NICE k must be at least 2")
        self.topology = topology
        self.k = k
        self.max_cluster = 3 * k - 1
        # clusters per layer; layer 0 first.  cluster_of[i][host] is the
        # cluster at layer i containing host.
        self.layers: List[List[Cluster]] = []
        self.cluster_of: List[Dict[int, Cluster]] = []
        self.hosts: Set[int] = set()

    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        """The topmost leader (the host the key server unicasts to)."""
        if not self.layers:
            raise RuntimeError("empty hierarchy")
        top = self.layers[-1]
        if len(top) != 1:
            raise RuntimeError("top layer not consolidated")
        return top[0].leader

    def num_layers(self) -> int:
        return len(self.layers)

    def clusters_at(self, layer: int) -> List[Cluster]:
        return list(self.layers[layer])

    def clusters_containing(self, host: int) -> List[Cluster]:
        """All clusters the host belongs to, bottom layer first."""
        return [
            m[host] for m in self.cluster_of if host in m
        ]

    # ------------------------------------------------------------------
    def _rtt(self, a: int, b: int) -> float:
        return self.topology.rtt(a, b)

    def _center(self, members: Set[int]) -> int:
        """Graph-theoretic center: minimizes the max RTT to the others."""
        member_list = sorted(members)
        if len(member_list) == 1:
            return member_list[0]
        best, best_radius = member_list[0], float("inf")
        for candidate in member_list:
            radius = max(
                self._rtt(candidate, other)
                for other in member_list
                if other != candidate
            )
            if radius < best_radius:
                best, best_radius = candidate, radius
        return best

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, host: int) -> None:
        """Sequential NICE join: descend from the root probing one cluster
        per layer, then join the closest leader's layer-0 cluster."""
        if host in self.hosts:
            raise ValueError(f"host {host} already joined")
        self.hosts.add(host)
        if not self.layers:
            cluster = Cluster(0, {host}, host)
            self.layers.append([cluster])
            self.cluster_of.append({host: cluster})
            return
        current = self.root
        for layer in range(len(self.layers) - 1, 0, -1):
            cluster = self.cluster_of[layer][current]
            current = min(
                cluster.members, key=lambda member: self._rtt(host, member)
            )
        target = self.cluster_of[0][current]
        target.members.add(host)
        self.cluster_of[0][host] = target
        self._after_change(target)

    def leave(self, host: int) -> None:
        """Graceful leave: the host departs every layer; leadership and
        cluster-size invariants are repaired."""
        if host not in self.hosts:
            raise KeyError(f"host {host} not in hierarchy")
        self.hosts.remove(host)
        for layer in range(len(self.cluster_of) - 1, -1, -1):
            cluster = self.cluster_of[layer].get(host)
            if cluster is None:
                continue
            cluster.members.discard(host)
            del self.cluster_of[layer][host]
            self._after_change(cluster)
        self._collapse_top()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _after_change(self, cluster: Cluster) -> None:
        if not cluster.members:
            self._delete_cluster(cluster)
            return
        if len(cluster.members) > self.max_cluster:
            self._split(cluster)
            return
        self._fix_leader(cluster)
        if len(cluster.members) < self.k:
            self._merge(cluster)

    def _fix_leader(self, cluster: Cluster) -> None:
        new = self._center(cluster.members)
        old = cluster.leader
        if new == old and old in cluster.members:
            return
        cluster.leader = new
        layer_above = cluster.layer + 1
        if layer_above >= len(self.layers):
            return  # topmost cluster: its leader simply is the root
        parent = self.cluster_of[layer_above].get(old)
        if parent is not None:
            # The new leader takes the old leader's slot in layer above.
            parent.members.discard(old)
            del self.cluster_of[layer_above][old]
            if new not in self.cluster_of[layer_above]:
                parent.members.add(new)
                self.cluster_of[layer_above][new] = parent
            self._after_change(parent)
        elif new not in self.cluster_of[layer_above]:
            self._insert_into_layer(layer_above, new)

    def _insert_into_layer(self, layer: int, host: int) -> None:
        """Place a freshly promoted leader into a layer (the old leader's
        slot there is already gone)."""
        if layer >= len(self.layers):
            cluster = Cluster(layer, {host}, host)
            self.layers.append([cluster])
            self.cluster_of.append({host: cluster})
            return
        candidates = self.layers[layer]
        if not candidates:
            cluster = Cluster(layer, {host}, host)
            candidates.append(cluster)
            self.cluster_of[layer][host] = cluster
            return
        target = min(
            candidates, key=lambda c: self._rtt(host, c.leader)
        )
        target.members.add(host)
        self.cluster_of[layer][host] = target
        self._after_change(target)

    def _delete_cluster(self, cluster: Cluster) -> None:
        layer = cluster.layer
        if cluster in self.layers[layer]:
            self.layers[layer].remove(cluster)
        layer_above = layer + 1
        old = cluster.leader
        if layer_above < len(self.layers):
            parent = self.cluster_of[layer_above].get(old)
            if parent is not None and old not in self.cluster_of[layer].keys():
                parent.members.discard(old)
                self.cluster_of[layer_above].pop(old, None)
                self._after_change(parent)
        self._collapse_top()

    def _collapse_top(self) -> None:
        """Drop empty top layers and layers whose single cluster has a
        single member (the hierarchy shrank)."""
        while self.layers and not self.layers[-1]:
            self.layers.pop()
            self.cluster_of.pop()
        while (
            len(self.layers) > 1
            and len(self.layers[-1]) == 1
            and len(self.layers[-1][0].members) == 1
            and len(self.layers[-2]) == 1
        ):
            # A singleton top cluster over a single cluster below it is
            # redundant: the lower cluster's leader is the root already.
            only = next(iter(self.layers[-1][0].members))
            self.layers.pop()
            self.cluster_of.pop()
            if self.layers[-1][0].leader != only:
                self._fix_leader(self.layers[-1][0])

    def _split(self, cluster: Cluster) -> None:
        """Split an oversized cluster into two balanced halves seeded by
        the farthest pair of members."""
        members = sorted(cluster.members)
        seed_a, seed_b, worst = members[0], members[1], -1.0
        for idx, a in enumerate(members):
            for b in members[idx + 1 :]:
                d = self._rtt(a, b)
                if d > worst:
                    seed_a, seed_b, worst = a, b, d
        half = len(members) // 2
        ranked = sorted(
            (m for m in members),
            key=lambda m: self._rtt(m, seed_a) - self._rtt(m, seed_b),
        )
        part_a, part_b = set(ranked[:half]), set(ranked[half:])

        layer = cluster.layer
        old = cluster.leader
        self.layers[layer].remove(cluster)
        new_a = Cluster(layer, part_a, self._center(part_a))
        new_b = Cluster(layer, part_b, self._center(part_b))
        self.layers[layer].extend([new_a, new_b])
        for member in part_a:
            self.cluster_of[layer][member] = new_a
        for member in part_b:
            self.cluster_of[layer][member] = new_b

        layer_above = layer + 1
        if layer_above >= len(self.layers):
            top = Cluster(layer_above, {new_a.leader, new_b.leader})
            top.leader = self._center(top.members)
            self.layers.append([top])
            self.cluster_of.append(
                {new_a.leader: top, new_b.leader: top}
            )
            return
        parent = self.cluster_of[layer_above].get(old)
        if parent is None:
            for leader in (new_a.leader, new_b.leader):
                if leader not in self.cluster_of[layer_above]:
                    self._insert_into_layer(layer_above, leader)
            return
        parent.members.discard(old)
        self.cluster_of[layer_above].pop(old, None)
        for leader in (new_a.leader, new_b.leader):
            if leader not in self.cluster_of[layer_above]:
                parent.members.add(leader)
                self.cluster_of[layer_above][leader] = parent
        self._after_change(parent)

    def _merge(self, cluster: Cluster) -> None:
        """Merge an undersized cluster into the sibling with the nearest
        leader (siblings: clusters of the same layer)."""
        layer = cluster.layer
        siblings = [c for c in self.layers[layer] if c is not cluster]
        if not siblings:
            return  # the only cluster of its layer may stay small
        target = min(
            siblings, key=lambda c: self._rtt(cluster.leader, c.leader)
        )
        old = cluster.leader
        self.layers[layer].remove(cluster)
        for member in cluster.members:
            target.members.add(member)
            self.cluster_of[layer][member] = target
        layer_above = layer + 1
        if layer_above < len(self.layers):
            parent = self.cluster_of[layer_above].get(old)
            if parent is not None:
                parent.members.discard(old)
                del self.cluster_of[layer_above][old]
                self._after_change(parent)
        self._after_change(target)
        self._collapse_top()

    # ------------------------------------------------------------------
    # Invariants (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> List[str]:
        problems: List[str] = []
        if not self.layers:
            return problems
        layer0 = set()
        for cluster in self.layers[0]:
            layer0 |= cluster.members
        if layer0 != self.hosts:
            problems.append("layer 0 does not contain every host exactly once")
        for i, layer in enumerate(self.layers):
            seen: Set[int] = set()
            for cluster in layer:
                if cluster.leader not in cluster.members:
                    problems.append(f"layer {i}: leader outside cluster")
                if cluster.members & seen:
                    problems.append(f"layer {i}: overlapping clusters")
                seen |= cluster.members
                if i + 1 < len(self.layers):
                    if cluster.leader not in self.cluster_of[i + 1]:
                        problems.append(
                            f"layer {i}: leader {cluster.leader} missing "
                            f"from layer {i + 1}"
                        )
            # layer i>0 members must be leaders of layer i-1 clusters
            if i > 0:
                lower_leaders = {c.leader for c in self.layers[i - 1]}
                if seen - lower_leaders:
                    problems.append(
                        f"layer {i}: members {seen - lower_leaders} lead "
                        f"no layer-{i-1} cluster"
                    )
        if len(self.layers[-1]) != 1:
            problems.append("top layer must hold a single cluster")
        return problems


# ----------------------------------------------------------------------
# Delivery
# ----------------------------------------------------------------------
def nice_multicast(
    hierarchy: NiceHierarchy,
    topology: Topology,
    source_host: Optional[int] = None,
    server_host: Optional[int] = None,
    processing_delay: float = 0.0,
) -> AlmSessionResult:
    """Simulate one NICE multicast session.

    For rekey transport pass ``server_host``: the key server unicasts the
    message to the NICE root, and delivery proceeds top-down.  For data
    transport the source unicasts to its local (layer-0) cluster leader
    and the message traverses the tree bottom-up then top-down.

    The forwarding rule: a host that got the message from a peer of
    cluster ``C`` forwards it to its peers in every other cluster it
    belongs to.
    """
    if (source_host is None) == (server_host is None):
        raise ValueError("pass exactly one of source_host / server_host")
    origin = server_host if server_host is not None else source_host
    result = AlmSessionResult(sender_host=origin)
    counter = itertools.count()
    queue: List[Tuple[float, int, int, int, Optional[Cluster]]] = []

    def push(src: int, dst: int, now: float, via: Optional[Cluster]) -> None:
        arrival = now + processing_delay + topology.one_way_delay(src, dst)
        result.edges.append(AlmEdge(src, dst, now, arrival))
        heapq.heappush(queue, (arrival, next(counter), src, dst, via))

    def forward(host: int, now: float, received_via: Optional[Cluster]) -> None:
        for cluster in hierarchy.clusters_containing(host):
            if cluster is received_via:
                continue
            for peer in cluster.members:
                if peer != host:
                    push(host, peer, now, cluster)

    if server_host is not None:
        # Rekey: server --unicast--> root, then top-down.
        push(server_host, hierarchy.root, 0.0, None)
    else:
        # Data: source --unicast--> its local cluster leader.
        local = hierarchy.cluster_of[0][source_host]
        if local.leader == source_host:
            forward(source_host, 0.0, None)
        else:
            push(source_host, local.leader, 0.0, None)

    delivered: Set[int] = set()
    while queue:
        arrival, _, src, host, via = heapq.heappop(queue)
        if host == origin or (source_host is not None and host == source_host):
            # A copy bounced back to the origin (the source's cluster
            # leader forwards into the source's own cluster); drop it.
            continue
        if host in delivered:
            result.duplicate_copies[host] = (
                result.duplicate_copies.get(host, 0) + 1
            )
            continue
        delivered.add(host)
        result.arrival[host] = arrival
        result.upstream[host] = src
        forward(host, arrival, via)
    return result
