"""Shared types for baseline ALM schemes (NICE, IP multicast).

Baseline schemes address members by topology host index (they have no
notion of the paper's user IDs), so their session results are keyed by
host.  The metrics of Section 4.1 — user stress, application-layer delay,
RDP — are computable from this record just as from a T-mesh session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.topology import Topology


@dataclass(frozen=True)
class AlmEdge:
    """One overlay (or server-unicast) hop of a baseline multicast."""

    src_host: int
    dst_host: int
    send_time: float
    arrival_time: float


@dataclass
class AlmSessionResult:
    """Delivery record of one baseline multicast session."""

    sender_host: int
    arrival: Dict[int, float] = field(default_factory=dict)
    upstream: Dict[int, int] = field(default_factory=dict)
    edges: List[AlmEdge] = field(default_factory=list)
    duplicate_copies: Dict[int, int] = field(default_factory=dict)

    def user_stress(self, host: int) -> int:
        return sum(1 for e in self.edges if e.src_host == host)

    def app_delay(self, host: int) -> float:
        return self.arrival[host]

    def rdp(self, host: int, topology: Topology) -> float:
        unicast = topology.one_way_delay(self.sender_host, host)
        if unicast <= 0:
            return 1.0
        return self.arrival[host] / unicast

    def downstream_hosts(self, host: int) -> List[int]:
        """Hosts below ``host`` in the session's delivery tree."""
        children: Dict[int, List[int]] = {}
        for receiver, parent in self.upstream.items():
            children.setdefault(parent, []).append(receiver)
        result: List[int] = []
        stack = list(children.get(host, ()))
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(children.get(node, ()))
        return result
