"""The compute seam: pluggable kernels for the protocol's batch arithmetic.

The three hottest pure-arithmetic paths of the reproduction — the
FORWARD fan-out of Fig. 2 (:mod:`repro.core.tmesh`), the Theorem-2
rekey-split prefix predicate of Fig. 5 (:mod:`repro.core.splitting`),
and key-tree batch-rekey node marking (:mod:`repro.keytree.
modified_tree`) — are integer/prefix algebra executed once per receipt,
per encryption, or per changed u-node.  This package names those
operations as a backend interface so the protocol modules depend on the
*seam*, never on how the arithmetic is executed (the same inversion
:mod:`repro.net.scheduling` applied to event scheduling in PR 6).

Two backends ship:

* ``"reference"`` — the pure-Python loops, extracted verbatim from the
  hot paths they used to live in (:mod:`repro.compute.reference`).
  This is the semantic definition; it has no dependencies beyond the
  standard library and is always available.
* ``"numpy"`` — batch-vectorized kernels (:mod:`repro.compute.
  numpy_backend`): bit-packed ID/prefix arrays (uint64 codes + length
  columns), whole-receipt-set FORWARD fan-out, batched split masks, and
  array-based rekey node marking.  Requires :mod:`numpy` (the ``fast``
  optional extra); falls back to ``"reference"`` gracefully when numpy
  is absent or when a session violates the Theorem-1 preconditions the
  batch formulation relies on.

Equivalence discipline: both backends must produce **bitwise identical**
results — same receipts in the same order, same edge lists, same
floats — enforced by ``tests/test_perf_equivalence.py`` /
``tests/test_compute_backends.py`` and arbitrated by
:class:`repro.verify.oracle.DifferentialOracle` on any divergence
(``tools/check_invariants.py`` replays a fixed-seed session through
both backends and diffs them against the oracle's brute-force BFS).

Selection: hot-path entry points accept a ``compute=`` argument (a
backend name or instance); ``None`` resolves to the process default,
settable via :func:`set_default_backend`, ``python -m repro
--compute=numpy``, or the ``REPRO_COMPUTE`` environment variable (read
once, on first resolution — this is how the perf harness and forked
bench workers select a backend).
"""

from __future__ import annotations

import importlib
import os
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "ComputeBackend",
    "ComputeUnavailable",
    "available_backends",
    "create_backend",
    "default_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]


class ComputeUnavailable(RuntimeError):
    """A named backend exists but cannot run here (missing dependency)."""


class ComputeBackend:
    """Interface every compute backend implements.

    Methods mirror the protocol operations they accelerate; argument and
    return types are exactly those of the pure-Python code they replace,
    so call sites stay oblivious to the backend behind the seam.  A
    backend unable to handle a particular input (unsupported ID scheme,
    tables violating the Theorem-1 preconditions its batch formulation
    needs) must *delegate to the reference semantics*, never raise.
    """

    name: str = "abstract"

    # T-mesh FORWARD (Fig. 2) ------------------------------------------
    def fanout_session(self, sender_table, tables, topology,
                       processing_delay=0.0, failed_hosts=None):
        """One fault-free multicast session over 1-consistent tables:
        the fast path of :func:`repro.core.tmesh.run_multicast`."""
        raise NotImplementedError

    def replay_plan(self, plan, topology, processing_delay=0.0):
        """Replay a :class:`repro.core.tmesh.SessionPlan`."""
        raise NotImplementedError

    # Rekey-message splitting (Fig. 5 / Theorem 2) ---------------------
    def split_rekey(self, session, message, track_sets=False):
        """Splitting applied along a finished session: the body of
        :func:`repro.core.splitting.run_split_rekey`."""
        raise NotImplementedError

    # Key-tree batch rekeying (Section 2.4) ----------------------------
    def mark_updated(self, changed_unodes, contains, num_digits):
        """K-nodes whose keys must change after a membership batch:
        every surviving k-node on a path from a changed u-node to the
        root, sorted by (depth, digits).  ``contains`` is a membership
        predicate over the ID tree."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[[], ComputeBackend]] = {}

#: Built-in backends, resolved by lazy import so this module stays free
#: of heavy imports (and importable by the protocol layers).
_BUILTIN_MODULES = {
    "reference": "repro.compute.reference",
    "numpy": "repro.compute.numpy_backend",
}

_DEFAULT: Optional[ComputeBackend] = None
_DEFAULT_NAME: Optional[str] = None
_INSTANCES: Dict[str, ComputeBackend] = {}


def register_backend(name: str, factory: Callable[[], ComputeBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Names resolvable by :func:`create_backend` (built-ins included,
    whether or not their dependencies are importable)."""
    return sorted(set(_BUILTIN_MODULES) | set(_FACTORIES))


def create_backend(name: str) -> ComputeBackend:
    """Instantiate a backend by name (one shared instance per name —
    backends are stateless except for memoized compilation caches).

    Raises :class:`ComputeUnavailable` when the backend's dependency is
    missing and ``KeyError`` for unknown names.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        module_name = _BUILTIN_MODULES.get(name)
        if module_name is None:
            raise KeyError(
                f"unknown compute backend {name!r}; have {available_backends()}"
            )
        module = importlib.import_module(module_name)
        factory = _FACTORIES.get(name)
        if factory is None:  # the module registers itself on import
            factory = getattr(module, "make_backend")
            _FACTORIES[name] = factory
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def set_default_backend(name: Optional[str]) -> None:
    """Set the process-wide default (``None`` restores built-in
    resolution: ``REPRO_COMPUTE`` env var, else ``"reference"``)."""
    global _DEFAULT, _DEFAULT_NAME
    _DEFAULT_NAME = name
    _DEFAULT = None if name is None else create_backend(name)


def default_backend() -> ComputeBackend:
    """The backend used when a call site passes ``compute=None``.

    Resolution order: :func:`set_default_backend`, the ``REPRO_COMPUTE``
    environment variable, ``"reference"``.  A requested ``"numpy"``
    backend whose dependency is missing degrades to ``"reference"``
    (graceful-fallback contract of the ``fast`` extra) — by design this
    can never make a run fail, only run slower.
    """
    global _DEFAULT
    if _DEFAULT is not None:
        return _DEFAULT
    name = _DEFAULT_NAME or os.environ.get("REPRO_COMPUTE") or "reference"
    try:
        _DEFAULT = create_backend(name)
    except ComputeUnavailable:
        _DEFAULT = create_backend("reference")
    return _DEFAULT


def resolve_backend(
    compute: Union[None, str, ComputeBackend],
) -> ComputeBackend:
    """Normalize a ``compute=`` argument: ``None`` -> process default,
    a name -> :func:`create_backend`, a backend instance -> itself."""
    if compute is None:
        return default_backend()
    if isinstance(compute, str):
        return create_backend(compute)
    return compute
