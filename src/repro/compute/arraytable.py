"""Array-table kernels for the large-N scale ladder.

Three kernel families, all on the bit-packed uint64 ID codes from
:mod:`repro.compute.packing` (docs/PERFORMANCE.md, "Scale ladder"):

* **ID synthesis** — :func:`synthesize_clustered_codes` is the
  vectorized twin of
  :func:`repro.core.id_assignment.synthesize_clustered_ids`: it issues
  the *identical* sequence of ``rng.integers`` calls (same batch shapes,
  same bounds) and applies the identical first-occurrence dedup, so the
  packed codes it returns are bitwise-equal to packing the scalar
  generator's tuples — at any N, with any seed.
* **Prefix segmentation** — sorted packed codes group members by
  ``depth``-digit prefix with one masked-difference pass
  (:func:`segment_starts`); unsigned code order equals lexicographic
  digit order for equal-length IDs, so a sort plus segmentation *is* the
  ID trie, flattened.
* **Canonical receipt digest** — a blake2b over fixed-layout
  little-endian rows ``(code u64, host i64, level i64, upstream_host
  i64, arrival f64)`` sorted by member code.  The streaming fan-out
  emits rows shard by shard in ascending code order and updates the
  digest incrementally; the dense path extracts the same rows from a
  materialized :class:`~repro.core.tmesh.SessionResult` and sorts once.
  Equal digests ⇔ equal receipts, which is how dense-vs-streaming
  bitwise equivalence is enforced at sizes where both paths run.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

import numpy as np

from .packing import MASKS, pack_id

#: Fixed little-endian row layout hashed by the canonical receipt
#: digest.  Explicit byte order keeps the digest machine-independent.
RECEIPT_ROW_DTYPE = np.dtype(
    [
        ("code", "<u8"),
        ("host", "<i8"),
        ("level", "<i8"),
        ("upstream_host", "<i8"),
        ("arrival", "<f8"),
    ]
)

#: Digest algorithm/size for canonical receipt digests.
_DIGEST_SIZE = 16


# ----------------------------------------------------------------------
# ID synthesis
# ----------------------------------------------------------------------
def pack_digit_matrix(batch: np.ndarray) -> np.ndarray:
    """Pack an ``(n, D)`` digit matrix into ``n`` left-aligned uint64
    codes — the array form of :func:`repro.compute.packing.pack_digits`.
    Caller guarantees ``D <= 8`` and digits ``< 256``."""
    num_digits = batch.shape[1]
    shifts = np.array(
        [56 - 8 * k for k in range(num_digits)], dtype=np.uint64
    )
    lanes = batch.astype(np.uint64) << shifts
    return np.bitwise_or.reduce(lanes, axis=1)


def synthesize_clustered_codes(
    num_users: int,
    rng: np.random.Generator,
    bounds: Sequence[int],
) -> np.ndarray:
    """``num_users`` distinct packed ID codes in generation order,
    consuming ``rng`` identically to
    :func:`~repro.core.id_assignment.synthesize_clustered_ids`.

    Identical consumption means identical ``rng.integers`` calls: each
    rejection batch draws ``(remaining, len(bounds))`` integers, then
    keeps the first occurrence of every not-yet-seen code in draw order
    (``np.unique(return_index=True)`` against the growing seen-set).
    The returned array equals ``pack_digits`` applied to the scalar
    generator's tuples, element for element.
    """
    bounds_arr = np.asarray(bounds)
    out = np.empty(num_users, dtype=np.uint64)
    count = 0
    seen = np.empty(0, dtype=np.uint64)  # kept sorted
    while count < num_users:
        batch = rng.integers(
            0, bounds_arr, size=(num_users - count, len(bounds))
        )
        codes = pack_digit_matrix(batch)
        uniq, first_idx = np.unique(codes, return_index=True)
        fresh_mask = ~np.isin(uniq, seen, assume_unique=True)
        keep = np.sort(first_idx[fresh_mask])
        fresh = codes[keep]
        out[count : count + len(fresh)] = fresh
        count += len(fresh)
        seen = np.union1d(seen, fresh)
    return out


# ----------------------------------------------------------------------
# Prefix segmentation
# ----------------------------------------------------------------------
def segment_starts(sorted_codes: np.ndarray, depth: int) -> np.ndarray:
    """Start indices of the ``depth``-digit prefix groups in an array of
    packed codes *sorted ascending*.  Always begins with 0 (for a
    non-empty input); the implied end of the last group is ``len``."""
    if len(sorted_codes) == 0:
        return np.empty(0, dtype=np.intp)
    masked = sorted_codes & MASKS[depth]
    changed = np.flatnonzero(masked[1:] != masked[:-1]) + 1
    return np.concatenate(([0], changed))


# ----------------------------------------------------------------------
# Canonical receipt digest
# ----------------------------------------------------------------------
def new_receipt_digest() -> "hashlib._Hash":
    """A fresh incremental hasher for canonical receipt rows."""
    return hashlib.blake2b(digest_size=_DIGEST_SIZE)


def update_receipt_digest(
    hasher: "hashlib._Hash",
    codes: np.ndarray,
    hosts: np.ndarray,
    levels: np.ndarray,
    upstream_hosts: np.ndarray,
    arrivals: np.ndarray,
) -> None:
    """Feed one block of receipt rows (already sorted by ``codes``, and
    globally in ascending-code order across successive calls) into an
    incremental canonical digest."""
    rows = np.empty(len(codes), dtype=RECEIPT_ROW_DTYPE)
    rows["code"] = codes
    rows["host"] = hosts
    rows["level"] = levels
    rows["upstream_host"] = upstream_hosts
    rows["arrival"] = arrivals
    hasher.update(rows.tobytes())


def session_receipt_rows(session) -> Tuple[np.ndarray, ...]:
    """Canonical receipt rows of a materialized
    :class:`~repro.core.tmesh.SessionResult`, sorted by packed member
    code: ``(codes, hosts, levels, upstream_hosts, arrivals)``.

    Raises ``ValueError`` when a member ID doesn't bit-pack (schemes
    beyond ``D <= 8, B <= 256`` have no canonical digest).  Upstreams
    are identified by *host* — hosts are unique per member and the
    sender's host is explicit on the session — which sidesteps the
    code-space collision between the null ID and an all-zero-digit ID.
    """
    receipts = session.receipts
    n = len(receipts)
    codes = np.empty(n, dtype=np.uint64)
    hosts = np.empty(n, dtype=np.int64)
    levels = np.empty(n, dtype=np.int64)
    up_hosts = np.empty(n, dtype=np.int64)
    arrivals = np.empty(n, dtype=np.float64)
    sender = session.sender
    for k, (member, receipt) in enumerate(receipts.items()):
        packed = pack_id(member)
        if packed is None:
            raise ValueError(
                f"member {member} does not bit-pack; no canonical digest"
            )
        codes[k] = packed[0]
        hosts[k] = receipt.host
        levels[k] = receipt.forward_level
        upstream = receipt.upstream
        if upstream == sender:
            up_hosts[k] = session.sender_host
        else:
            up_hosts[k] = receipts[upstream].host
        arrivals[k] = receipt.arrival_time
    order = np.argsort(codes, kind="stable")
    return (
        codes[order],
        hosts[order],
        levels[order],
        up_hosts[order],
        arrivals[order],
    )


def session_receipt_digest(session) -> str:
    """Hex canonical receipt digest of a materialized session — equal to
    the streaming path's digest iff every receipt field matches bitwise
    (member, host, forwarding level, upstream, arrival time)."""
    hasher = new_receipt_digest()
    update_receipt_digest(hasher, *session_receipt_rows(session))
    return hasher.hexdigest()
