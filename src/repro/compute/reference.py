"""The ``"reference"`` compute backend: the pure-Python hot loops.

These are the loops that lived inline in :mod:`repro.core.tmesh`,
:mod:`repro.core.splitting`, and :mod:`repro.keytree.modified_tree`
before the compute seam, moved here verbatim.  They are the *semantic
definition* of the seam's operations — every other backend must
reproduce their output bitwise (same receipts in the same order, same
edge lists, same floats; see ``tests/test_compute_backends.py``) — and
the permanent fallback whenever an accelerated backend cannot handle an
input.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.ids import Id
from ..core.splitting import SplitSessionResult, split_for_next_hop
from ..core.tmesh import OverlayEdge, Receipt, SessionPlan, SessionResult
from . import ComputeBackend, register_backend


class ReferenceBackend(ComputeBackend):
    """Pure-Python kernels; always available, always correct."""

    name = "reference"

    # ------------------------------------------------------------------
    # T-mesh FORWARD (Fig. 2)
    # ------------------------------------------------------------------
    def fanout_session(
        self,
        sender_table,
        tables,
        topology,
        processing_delay: float = 0.0,
        failed_hosts: Optional[set] = None,
    ) -> SessionResult:
        """One fault-free multicast session (no backups, no injected
        faults): the fast path of ``run_multicast``.

        Copies sent to ``failed_hosts`` are lost along with their whole
        subtree, exactly as in the general event loop.
        """
        ow_rows = topology.one_way_rows()
        if ow_rows is not None:
            return _fanout_dense(
                sender_table, tables, topology, processing_delay, failed_hosts
            )
        return _fanout_scalar(
            sender_table, tables, topology, processing_delay, failed_hosts
        )

    def replay_plan(
        self, plan: SessionPlan, topology, processing_delay: float = 0.0
    ) -> SessionResult:
        """Replay a :class:`~repro.core.tmesh.SessionPlan` against a
        topology's delays (the pre-seam ``SessionPlan._replay``)."""
        sender = plan.sender
        sender_id = sender.user_id
        result = SessionResult(sender=sender_id, sender_host=sender.host)
        edges_append = result.edges.append
        receipts = result.receipts
        duplicates = result.duplicate_copies
        heappush = heapq.heappush
        heappop = heapq.heappop
        schedule_for = plan._schedule_for
        schedules = plan._schedules
        ow_rows = topology.one_way_rows()
        one_way_delay = topology.one_way_delay if ow_rows is None else None
        queue: List[Tuple[float, int, Id, int, int, Id]] = []
        seq = 0

        # Seed: the sender forwards at level 0 / time 0.
        now = 0.0
        src_id, src_host = sender_id, sender.host
        sched = plan._sender_schedule
        while True:
            if ow_rows is not None:
                delays = ow_rows[src_host]
                for i, nbr_id, nbr_host in sched:
                    base_arrival = now + processing_delay + delays[nbr_host]
                    edges_append(
                        OverlayEdge(
                            src_id, nbr_id, src_host, nbr_host, i, now, base_arrival
                        )
                    )
                    heappush(
                        queue, (base_arrival, seq, nbr_id, nbr_host, i + 1, src_id)
                    )
                    seq += 1
            else:
                for i, nbr_id, nbr_host in sched:
                    base_arrival = (
                        now + processing_delay + one_way_delay(src_host, nbr_host)
                    )
                    edges_append(
                        OverlayEdge(
                            src_id, nbr_id, src_host, nbr_host, i, now, base_arrival
                        )
                    )
                    heappush(
                        queue, (base_arrival, seq, nbr_id, nbr_host, i + 1, src_id)
                    )
                    seq += 1
            # Drain deliveries until one triggers a new forward.
            while True:
                if not queue:
                    return result
                arrival, _, member_id, host, level, upstream = heappop(queue)
                if member_id in receipts or member_id == sender_id:
                    duplicates[member_id] = duplicates.get(member_id, 0) + 1
                    continue
                receipts[member_id] = Receipt(
                    member_id, host, arrival, level, upstream
                )
                memo = schedules.get(member_id)
                sched = memo[level] if memo is not None else None
                if sched is None:
                    sched = schedule_for(member_id, level)
                if sched:
                    now = arrival
                    src_id, src_host = member_id, host
                    break

    # ------------------------------------------------------------------
    # Rekey-message splitting (Fig. 5 / Theorem 2)
    # ------------------------------------------------------------------
    def split_rekey(
        self, session: SessionResult, message, track_sets: bool = False
    ) -> SplitSessionResult:
        """The pre-seam body of ``run_split_rekey``: process hops in
        causal order, filtering each with the Theorem-2 predicate against
        the forwarder's *received* set."""
        result = SplitSessionResult()
        holdings: Dict[Id, tuple] = {session.sender: tuple(message.encryptions)}
        result.forwarded[session.sender] = 0
        for member in session.receipts:
            result.forwarded.setdefault(member, 0)
        # Hops sorted by send time give a causally consistent processing order.
        for edge in sorted(
            session.edges, key=lambda e: (e.send_time, e.arrival_time)
        ):
            have = holdings.get(edge.src)
            if have is None:
                # A duplicate-delivery artifact: the src never got a first
                # copy before "sending".  Cannot happen with consistent
                # tables.
                have = ()
            carried = split_for_next_hop(have, edge.dst, edge.send_level)
            result.edge_loads.append((edge, len(carried)))
            result.forwarded[edge.src] = result.forwarded.get(edge.src, 0) + len(
                carried
            )
            receipt = session.receipts.get(edge.dst)
            if receipt is not None and receipt.upstream == edge.src:
                holdings[edge.dst] = carried
                result.received[edge.dst] = len(carried)
                if track_sets:
                    result.received_sets[edge.dst] = set(carried)
        return result

    # ------------------------------------------------------------------
    # Key-tree batch rekeying (Section 2.4)
    # ------------------------------------------------------------------
    def mark_updated(
        self,
        changed_unodes: Sequence[Id],
        contains: Callable[[Id], bool],
        num_digits: int,
    ) -> List[Id]:
        """The pre-seam ``ModifiedKeyTree._mark_updated``: every surviving
        k-node on the path from a changed u-node to the root."""
        marked: Set[Id] = set()
        for user_id in changed_unodes:
            for level in range(num_digits):
                prefix = user_id.prefix(level)
                if contains(prefix):
                    marked.add(prefix)
        # Deterministic order: by depth then digits, so crypto-mode secret
        # generation is reproducible for a given rng.
        return sorted(marked, key=lambda n: (len(n), n.digits))


def _fanout_dense(
    sender_table, tables, topology, processing_delay, failed_hosts
) -> SessionResult:
    """The dense-delay fan-out: seed forward + inlined drain loop, moved
    verbatim from ``run_multicast``'s fast path.  A sentinel receipt for
    the sender catches copies sent back to it without a per-pop equality
    test."""
    sender = sender_table.owner
    result = SessionResult(sender=sender.user_id, sender_host=sender.host)
    failed = failed_hosts if failed_hosts is not None else set()
    ow_rows = topology.one_way_rows()
    edges_append = result.edges.append
    heappush = heapq.heappush
    heappop = heapq.heappop
    queue: List[Tuple[float, int, object, int, Id]] = []
    seq = 0
    num_digits = sender_table.scheme.num_digits

    # Seed: the sender's FORWARD at level 0 / time 0.
    member_id = sender.user_id
    member_host = sender.host
    rows = (0,) if sender_table.is_server_table else range(num_digits)
    delays = ow_rows[member_host]
    base = 0.0 + processing_delay
    row_primaries = sender_table.row_primaries
    for i in rows:
        level_up = i + 1
        for j, nbr in row_primaries(i):
            nbr_host = nbr.host
            base_arrival = base + delays[nbr_host]
            edges_append(
                OverlayEdge(
                    member_id, nbr.user_id, member_host, nbr_host, i, 0.0,
                    base_arrival,
                )
            )
            heappush(queue, (base_arrival, seq, nbr, level_up, member_id))
            seq += 1

    receipts = result.receipts
    duplicates = result.duplicate_copies
    sender_id = sender.user_id
    tables_get = tables.get
    receipts[sender_id] = None  # sentinel; removed below
    while queue:
        arrival, _, record, level, upstream = heappop(queue)
        member_id = record.user_id
        if failed and record.host in failed:
            continue
        if member_id in receipts:
            duplicates[member_id] = duplicates.get(member_id, 0) + 1
            continue
        member_host = record.host
        receipts[member_id] = Receipt(
            member_id, member_host, arrival, level, upstream
        )
        if level >= num_digits:
            continue
        table = tables_get(member_id)
        if table is None:
            continue
        delays = ow_rows[member_host]
        base = arrival + processing_delay
        for i in range(level, num_digits):
            level_up = i + 1
            for j, nbr in table.row_primaries(i):
                nbr_host = nbr.host
                base_arrival = base + delays[nbr_host]
                edges_append(
                    OverlayEdge(
                        member_id,
                        nbr.user_id,
                        member_host,
                        nbr_host,
                        i,
                        arrival,
                        base_arrival,
                    )
                )
                heappush(queue, (base_arrival, seq, nbr, level_up, member_id))
                seq += 1
    del receipts[sender_id]
    return result


def _fanout_scalar(
    sender_table, tables, topology, processing_delay, failed_hosts
) -> SessionResult:
    """The scalar-delay fan-out (no dense RTT matrix built): the general
    event loop of ``run_multicast`` restricted to the fault-free case.
    Event keys, receipts, and edges are bitwise those of the general loop
    with ``fault_plan=None`` (whose per-event extra delay is ``+ 0.0``, a
    float no-op on the non-negative arrival times)."""
    sender = sender_table.owner
    result = SessionResult(sender=sender.user_id, sender_host=sender.host)
    failed = failed_hosts if failed_hosts is not None else set()
    one_way_delay = topology.one_way_delay
    edges_append = result.edges.append
    heappush = heapq.heappush
    heappop = heapq.heappop
    queue: List[Tuple[float, int, object, int, Id]] = []
    seq = 0
    num_digits = sender_table.scheme.num_digits

    def forward(member, table, level: int, now: float) -> None:
        nonlocal seq
        if level >= num_digits:
            return
        rows = (0,) if table.is_server_table else range(level, num_digits)
        member_id = member.user_id
        member_host = member.host
        base = now + processing_delay
        for i in rows:
            for j, nbr in table.row_primaries(i):
                nbr_host = nbr.host
                base_arrival = base + one_way_delay(member_host, nbr_host)
                edges_append(
                    OverlayEdge(
                        member_id,
                        nbr.user_id,
                        member_host,
                        nbr_host,
                        i,
                        now,
                        base_arrival,
                    )
                )
                heappush(queue, (base_arrival, seq, nbr, i + 1, member_id))
                seq += 1

    forward(sender, sender_table, 0, 0.0)
    receipts = result.receipts
    duplicates = result.duplicate_copies
    sender_id = sender.user_id
    tables_get = tables.get
    while queue:
        arrival, _, record, level, upstream = heappop(queue)
        member_id = record.user_id
        if record.host in failed:
            continue  # the copy is lost at a crashed member
        if member_id in receipts or member_id == sender_id:
            duplicates[member_id] = duplicates.get(member_id, 0) + 1
            continue
        receipts[member_id] = Receipt(
            member_id, record.host, arrival, level, upstream
        )
        table = tables_get(member_id)
        if table is not None:
            forward(record, table, level, arrival)
    return result


def make_backend() -> ReferenceBackend:
    return ReferenceBackend()


register_backend("reference", make_backend)
