"""The ``"numpy"`` compute backend: batch-vectorized protocol kernels.

The key observation (Theorem 1, and the premise of
:class:`repro.verify.oracle.DifferentialOracle`): with 1-consistent
tables the *delivery tree* of a fault-free session — who forwards which
rows to whom, and which copy delivers — is uniquely determined by the
tables alone.  Only the event *times* (and therefore the receipt/edge
ordering) depend on the topology's delays.  This backend exploits that
split:

* **Compile once per ``(sender_table, tables)``** (cache invalidated by
  the :class:`~repro.core.neighbor_table.NeighborTable` mutation epoch):
  a structural fan-out walk records members, delivering edges, per-level
  index arrays, and per-forwarder children — one reference-session's
  worth of Python, amortized over every replay.
* **Per session, pure array ops**: arrival times propagate level by
  level as gather-add-scatter over float64 columns (associating
  ``(arrival + processing_delay) + delay`` exactly as the reference
  loop does, so every float is bitwise identical), and the reference's
  event-pop order is recovered as a stable argsort of arrival times.
  When arrival ties exist — where argsort's tiebreak could diverge from
  the reference's push-sequence tiebreak — an exact heap mini-simulation
  over the compiled structure reproduces the reference order.
* **Lazy result**: the returned :class:`~repro.core.tmesh.SessionResult`
  materializes its Receipt/edge objects on first access, so
  array-consuming pipelines never pay for objects they don't read.

Splitting (Theorem 2) and key-tree marking vectorize over bit-packed
uint64 ID columns (:mod:`repro.compute.packing`): the prefix predicate
becomes one masked-XOR matrix, and holdings propagate down the delivery
tree as boolean rows.

Whenever an input falls outside a kernel's preconditions — failed
hosts, a session whose fan-out targets a member twice (tables violating
1-consistency), unpackable ID schemes, causality ties — the backend
delegates to :class:`~repro.compute.reference.ReferenceBackend`, whose
output is the contract.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import repeat
from typing import Callable, Dict, List, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    np = None  # type: ignore[assignment]

from ..core.ids import Id
from ..core.neighbor_table import NeighborTable
from ..core.splitting import SplitSessionResult
from ..core.tmesh import OverlayEdge, Receipt, SessionPlan, SessionResult
from . import ComputeBackend, ComputeUnavailable, register_backend
from .reference import ReferenceBackend

if np is not None:
    from .packing import MASKS, pack_ids


# ----------------------------------------------------------------------
# Compiled fan-out structure
# ----------------------------------------------------------------------
class _CompiledFanout:
    """The topology-independent structure of a fault-free session over a
    fixed ``(sender_table, tables)`` pair, in array form.

    Member slots are ``0 .. n-1`` in structural discovery order; the
    sender occupies the extra slot ``n`` (arrival 0.0).  Edges are laid
    out grouped per forwarder in schedule order — the reference appends
    a forwarder's whole block when it pops, so a stable sort of the
    groups by forwarder pop rank reproduces the reference edge order.
    """

    __slots__ = (
        "valid",
        "n",
        "sender_id",
        "sender_host",
        "member_ids",
        "member_hosts",
        "member_levels",
        "member_hosts_arr",
        "member_levels_arr",
        "e_rows_arr",
        "parent_ids",
        "e_src",
        "e_src_hosts",
        "e_dst_hosts",
        "e_src_host_list",
        "e_dst_host_list",
        "e_src_ids",
        "e_dst_ids",
        "e_rows",
        "max_level",
        "lvl_src",
        "lvl_dst",
        "lvl_edge",
        "children",
        "dup_count",
        "epoch",
        "tables_ref",
        "tables_len",
        "_delay_state",
    )


def _compile_fanout(sender_table, tables) -> _CompiledFanout:
    """One structural FORWARD walk (Fig. 2) recording the delivery tree.

    Marks the result invalid — caller falls back to the reference event
    loop — when any member is targeted more than once: then the delivery
    tree depends on arrival times and is not cacheable structure.
    """
    c = _CompiledFanout()
    sender = sender_table.owner
    sender_id = sender.user_id
    num_digits = sender_table.scheme.num_digits
    c.valid = True
    c.sender_id = sender_id
    c.sender_host = sender.host
    c._delay_state = None

    index: Dict[Id, int] = {}
    member_ids: List[Id] = []
    hosts: List[int] = []
    levels: List[int] = []
    parent_ids: List[Id] = []
    deliver: List[int] = []  # canonical edge index delivering each member
    e_src: List[int] = []  # forwarder slot (-1 = sender)
    e_rows: List[int] = []
    e_sh: List[int] = []
    e_dh: List[int] = []
    e_src_ids: List[Id] = []
    e_dst_ids: List[Id] = []
    children: Dict[int, List[int]] = {}
    dup = 0
    tables_get = tables.get

    # FIFO of forwarders; the sender's rows follow the server/user rule,
    # members forward rows ``level .. D-1`` (as in the reference drain).
    sender_rows = (0,) if sender_table.is_server_table else range(num_digits)
    work = deque()
    work.append((-1, sender_table, sender_rows, sender_id, sender.host))
    while work:
        slot, table, rows, src_uid, src_host = work.popleft()
        kids = children.setdefault(slot, [])
        for i in rows:
            for _j, nbr in table.row_primaries(i):
                uid = nbr.user_id
                eidx = len(e_src)
                if uid == sender_id:
                    # A copy sent back to the sender: counted as a
                    # duplicate, never forwarded.
                    e_src.append(slot)
                    e_rows.append(i)
                    e_sh.append(src_host)
                    e_dh.append(nbr.host)
                    e_src_ids.append(src_uid)
                    e_dst_ids.append(uid)
                    dup += 1
                    continue
                if uid in index:
                    c.valid = False  # timing-dependent delivery tree
                    return c
                tslot = len(member_ids)
                index[uid] = tslot
                member_ids.append(uid)
                hosts.append(nbr.host)
                levels.append(i + 1)
                parent_ids.append(src_uid)
                deliver.append(eidx)
                kids.append(tslot)
                e_src.append(slot)
                e_rows.append(i)
                e_sh.append(src_host)
                e_dh.append(nbr.host)
                e_src_ids.append(src_uid)
                e_dst_ids.append(uid)
                t = tables_get(uid)
                if t is not None and i + 1 < num_digits:
                    if t.is_server_table:
                        c.valid = False  # a member can't run server rows
                        return c
                    work.append(
                        (tslot, t, range(i + 1, num_digits), uid, nbr.host)
                    )

    n = len(member_ids)
    c.n = n
    c.member_ids = member_ids
    c.member_hosts = hosts
    c.member_levels = levels
    c.parent_ids = parent_ids
    c.e_src = np.array([n if s < 0 else s for s in e_src], dtype=np.intp)
    c.e_src_hosts = np.array(e_sh, dtype=np.intp)
    c.e_dst_hosts = np.array(e_dh, dtype=np.intp)
    c.e_src_host_list = e_sh
    c.e_dst_host_list = e_dh
    c.e_src_ids = e_src_ids
    c.e_dst_ids = e_dst_ids
    c.e_rows = e_rows
    c.children = children
    c.dup_count = dup
    # Integer columns mirrored as arrays: materialization reorders them
    # with one fancy index + tolist instead of a per-element Python loop.
    c.member_hosts_arr = np.array(hosts, dtype=np.int64)
    c.member_levels_arr = np.array(levels, dtype=np.int64)
    c.e_rows_arr = np.array(e_rows, dtype=np.int64)

    max_level = max(levels) if levels else 0
    c.max_level = max_level
    by_level: List[List[int]] = [[] for _ in range(max_level + 1)]
    for m, lvl in enumerate(levels):
        by_level[lvl].append(m)
    c.lvl_dst = [None] * (max_level + 1)
    c.lvl_src = [None] * (max_level + 1)
    c.lvl_edge = [None] * (max_level + 1)
    for lvl in range(1, max_level + 1):
        idx = by_level[lvl]
        c.lvl_dst[lvl] = np.array(idx, dtype=np.intp)
        c.lvl_edge[lvl] = np.array([deliver[m] for m in idx], dtype=np.intp)
        c.lvl_src[lvl] = np.array(
            [n if e_src[deliver[m]] < 0 else e_src[deliver[m]] for m in idx],
            dtype=np.intp,
        )
    return c


def _fanout_for(sender_table, tables) -> Optional[_CompiledFanout]:
    """The compiled fan-out for this pair, recompiled whenever any
    neighbor table mutated (global epoch) or a different tables dict is
    presented.  ``None`` when the structure is timing-dependent."""
    epoch = NeighborTable._mutation_epoch
    c = getattr(sender_table, "_compiled_fanout", None)
    if (
        c is None
        or c.tables_ref is not tables
        or c.epoch != epoch
        or c.tables_len != len(tables)
    ):
        c = _compile_fanout(sender_table, tables)
        c.epoch = epoch
        c.tables_ref = tables
        c.tables_len = len(tables)
        try:
            sender_table._compiled_fanout = c
        except AttributeError:  # table types without __dict__: recompile
            pass
    return c if c.valid else None


def _delays_for(c: _CompiledFanout, topology):
    """Per-canonical-edge one-way delays (plus per-level gathers), cached
    per topology object.  Bitwise the values the reference reads: the
    dense rows are ``rtt_matrix / 2.0`` and the scalar fallback calls
    ``one_way_delay`` pair by pair."""
    state = c._delay_state
    if state is not None and state[0] is topology:
        return state[1], state[2]
    m = topology.rtt_matrix_or_none()
    if m is not None:
        e_delay = m[c.e_src_hosts, c.e_dst_hosts] / 2.0
    else:
        owd = topology.one_way_delay
        e_delay = np.array(
            [
                owd(a, b)
                for a, b in zip(c.e_src_host_list, c.e_dst_host_list)
            ],
            dtype=np.float64,
        )
    lvl_delay: List[Optional[np.ndarray]] = [None] * (c.max_level + 1)
    for lvl in range(1, c.max_level + 1):
        lvl_delay[lvl] = e_delay[c.lvl_edge[lvl]]
    c._delay_state = (topology, e_delay, lvl_delay)
    return e_delay, lvl_delay


def _tie_order(c: _CompiledFanout, recv: "np.ndarray") -> "np.ndarray":
    """Exact delivery order under arrival ties: replay the reference's
    heap over the compiled structure.  Push sequence numbers are
    chronological exactly as the reference assigns them (duplicate
    copies to the sender change absolute sequence values but never the
    relative order of two pushes, so they are skipped)."""
    rl = recv.tolist()
    children = c.children
    heappush = heapq.heappush
    heappop = heapq.heappop
    heap: list = []
    seq = 0
    for m in children.get(-1, ()):
        heappush(heap, (rl[m], seq, m))
        seq += 1
    order: List[int] = []
    while heap:
        _a, _s, m = heappop(heap)
        order.append(m)
        for ch in children.get(m, ()):
            heappush(heap, (rl[ch], seq, ch))
            seq += 1
    return np.array(order, dtype=np.intp)


def _run_fanout_kernel(c: _CompiledFanout, topology, processing_delay: float):
    """Arrival propagation + delivery order: the per-session array work."""
    e_delay, lvl_delay = _delays_for(c, topology)
    n = c.n
    arr = np.empty(n + 1, dtype=np.float64)
    arr[n] = 0.0
    for lvl in range(1, c.max_level + 1):
        # Same association as the reference: (arrival + proc) + delay.
        tmp = arr[c.lvl_src[lvl]] + processing_delay
        arr[c.lvl_dst[lvl]] = tmp + lvl_delay[lvl]
    recv = arr[:n]
    order = np.argsort(recv, kind="stable")
    if n > 1:
        sorted_recv = recv[order]
        if bool((sorted_recv[1:] == sorted_recv[:-1]).any()):
            order = _tie_order(c, recv)
    return arr, recv, order, e_delay


def _materialize_session(c, arr, recv, order, e_delay, processing_delay):
    """Build the Python receipts/edges/duplicates exactly as the
    reference loop would have, from the kernel's arrays."""
    # Reorder every column with one fancy index + tolist, then build the
    # NamedTuples with ``tuple.__new__`` mapped over zipped columns — all
    # C-level, no per-element Python frame.  Object construction is the
    # bulk of a materialized session's cost; ``tuple.__new__(cls, row)``
    # is exactly what ``NamedTuple._make`` does minus the Python call.
    order_l = order.tolist()
    ids = c.member_ids
    parents = c.parent_ids
    mids = [ids[m] for m in order_l]
    receipts: Dict[Id, Receipt] = dict(
        zip(
            mids,
            map(
                tuple.__new__,
                repeat(Receipt),
                zip(
                    mids,
                    c.member_hosts_arr[order].tolist(),
                    recv[order].tolist(),
                    c.member_levels_arr[order].tolist(),
                    [parents[m] for m in order_l],
                ),
            ),
        )
    )

    n = c.n
    pop_rank = np.empty(n + 1, dtype=np.int64)
    pop_rank[order] = np.arange(n, dtype=np.int64)
    pop_rank[n] = -1  # the sender's block leads
    e_order = np.argsort(pop_rank[c.e_src], kind="stable")
    send = arr[c.e_src]
    e_arr = (send + processing_delay) + e_delay
    e_order_l = e_order.tolist()
    src_ids = c.e_src_ids
    dst_ids = c.e_dst_ids
    edges = list(
        map(
            tuple.__new__,
            repeat(OverlayEdge),
            zip(
                [src_ids[e] for e in e_order_l],
                [dst_ids[e] for e in e_order_l],
                c.e_src_hosts[e_order].tolist(),
                c.e_dst_hosts[e_order].tolist(),
                c.e_rows_arr[e_order].tolist(),
                send[e_order].tolist(),
                e_arr[e_order].tolist(),
            ),
        )
    )
    duplicates = {c.sender_id: c.dup_count} if c.dup_count else {}
    return receipts, edges, duplicates


# ----------------------------------------------------------------------
# Splitting structure (per session)
# ----------------------------------------------------------------------
class _SplitPrep:
    """Causally ordered, slot-indexed view of a finished session for the
    batch Theorem-2 kernel.  Slot 0 is the sender; members follow in
    receipts order."""

    __slots__ = (
        "edges_len",
        "edges_sorted",
        "e_src_slot",
        "hp_codes",
        "hp_lens",
        "tree_pos",
        "tree_dst_slot",
        "depth_src",
        "depth_dst",
        "depth_edge",
        "member_ids",
        "n_slots",
    )


def _split_prep(session: SessionResult) -> Optional[_SplitPrep]:
    """Build (or reuse) the splitting view; ``None`` when the session
    falls outside the kernel's preconditions (unpackable IDs, members
    without exactly one tree in-edge, or out-edges causally preceding
    the in-edge under sort ties)."""
    prep = session._split_prep
    edges = session.edges
    if prep is not None and prep.edges_len == len(edges):
        return prep
    receipts = session.receipts
    slot: Dict[Id, int] = {session.sender: 0}
    member_ids = list(receipts)
    for k, mid in enumerate(member_ids):
        slot[mid] = k + 1
    n_slots = len(member_ids) + 1

    order = sorted(range(len(edges)), key=lambda i: (edges[i].send_time, edges[i].arrival_time))
    edges_sorted = [edges[i] for i in order]
    packed = pack_ids([e.dst for e in edges_sorted])
    if packed is None:
        return None
    dst_codes, dst_lens = packed
    hp_lens = np.minimum(
        np.array([e.send_level + 1 for e in edges_sorted], dtype=np.int64),
        dst_lens,
    )
    hp_codes = dst_codes & MASKS[hp_lens]

    e_src_slot = np.empty(len(edges_sorted), dtype=np.intp)
    in_edge: Dict[int, int] = {}  # member slot -> causal tree-edge index
    first_out: Dict[int, int] = {}
    tree_pos: List[int] = []
    tree_dst_slot: List[int] = []
    for pos, edge in enumerate(edges_sorted):
        s = slot.get(edge.src)
        if s is None:
            return None  # a forwarder that never received a copy
        e_src_slot[pos] = s
        first_out.setdefault(s, pos)
        receipt = receipts.get(edge.dst)
        if receipt is not None and receipt.upstream == edge.src:
            d = slot[edge.dst]
            if d in in_edge:
                return None  # holdings assigned twice: timing-dependent
            in_edge[d] = pos
            tree_pos.append(pos)
            tree_dst_slot.append(d)
    for mid in member_ids:
        d = slot[mid]
        if d not in in_edge:
            return None  # a member with no delivering edge
        if d in first_out and first_out[d] < in_edge[d]:
            return None  # out-edges processed before holdings arrive

    # Tree depth per member: parents always precede children here
    # because a parent's in-edge is causally before its out-edges.
    depth = {0: 0}
    buckets: Dict[int, List[int]] = {}
    for pos, d in zip(tree_pos, tree_dst_slot):
        parent = int(e_src_slot[pos])
        dd = depth[parent] + 1
        depth[d] = dd
        buckets.setdefault(dd, []).append(pos)
    prep = _SplitPrep()
    prep.edges_len = len(edges)
    prep.edges_sorted = edges_sorted
    prep.e_src_slot = e_src_slot
    prep.hp_codes = hp_codes
    prep.hp_lens = hp_lens
    prep.tree_pos = tree_pos
    prep.tree_dst_slot = tree_dst_slot
    prep.member_ids = member_ids
    prep.n_slots = n_slots
    prep.depth_src = []
    prep.depth_dst = []
    prep.depth_edge = []
    for dd in sorted(buckets):
        pos_list = buckets[dd]
        prep.depth_edge.append(np.array(pos_list, dtype=np.intp))
        prep.depth_src.append(
            np.array([int(e_src_slot[p]) for p in pos_list], dtype=np.intp)
        )
        prep.depth_dst.append(
            np.array(
                [slot[edges_sorted[p].dst] for p in pos_list], dtype=np.intp
            )
        )
    session._split_prep = prep
    return prep


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class NumpyBackend(ComputeBackend):
    """Vectorized kernels with reference fallback."""

    name = "numpy"

    def __init__(self) -> None:
        self._reference = ReferenceBackend()

    # -- T-mesh FORWARD ------------------------------------------------
    def fanout_session(
        self,
        sender_table,
        tables,
        topology,
        processing_delay: float = 0.0,
        failed_hosts: Optional[set] = None,
    ) -> SessionResult:
        if failed_hosts:
            # Subtree loss makes the delivery tree timing-dependent.
            return self._reference.fanout_session(
                sender_table, tables, topology, processing_delay, failed_hosts
            )
        c = _fanout_for(sender_table, tables)
        if c is None:
            return self._reference.fanout_session(
                sender_table, tables, topology, processing_delay, failed_hosts
            )
        arr, recv, order, e_delay = _run_fanout_kernel(
            c, topology, processing_delay
        )
        return SessionResult.deferred(
            c.sender_id,
            c.sender_host,
            lambda: _materialize_session(
                c, arr, recv, order, e_delay, processing_delay
            ),
        )

    def replay_plan(
        self, plan: SessionPlan, topology, processing_delay: float = 0.0
    ) -> SessionResult:
        # A plan replay is defined to equal the classic run bitwise, so
        # the same compiled fan-out serves both (and is shared with it
        # through the sender-table cache).
        return self.fanout_session(
            plan.sender_table, plan.tables, topology, processing_delay
        )

    # -- Rekey-message splitting ---------------------------------------
    def split_rekey(
        self, session: SessionResult, message, track_sets: bool = False
    ) -> SplitSessionResult:
        prep = _split_prep(session)
        if prep is None:
            return self._reference.split_rekey(session, message, track_sets)
        enc = message.encryptions
        packed = pack_ids([e.id for e in enc])
        if packed is None:
            return self._reference.split_rekey(session, message, track_sets)
        enc_codes, enc_lens = packed

        # need[e, k]: encryption k passes the Theorem-2 predicate at hop e.
        min_len = np.minimum(prep.hp_lens[:, None], enc_lens[None, :])
        need = (
            (prep.hp_codes[:, None] ^ enc_codes[None, :]) & MASKS[min_len]
        ) == 0
        # Holdings as boolean rows, propagated down the delivery tree.
        hold = np.zeros((prep.n_slots, len(enc)), dtype=bool)
        hold[0] = True
        for src_s, dst_s, edge_i in zip(
            prep.depth_src, prep.depth_dst, prep.depth_edge
        ):
            hold[dst_s] = hold[src_s] & need[edge_i]
        carried = hold[prep.e_src_slot] & need
        loads = np.count_nonzero(carried, axis=1).tolist()

        result = SplitSessionResult()
        forwarded_by_slot = np.zeros(prep.n_slots, dtype=np.int64)
        np.add.at(
            forwarded_by_slot,
            prep.e_src_slot,
            np.asarray(loads, dtype=np.int64),
        )
        fwd_l = forwarded_by_slot.tolist()
        result.forwarded[session.sender] = fwd_l[0]
        member_ids = prep.member_ids
        for k, mid in enumerate(member_ids):
            result.forwarded[mid] = fwd_l[k + 1]
        edges_sorted = prep.edges_sorted
        result.edge_loads = [
            (edges_sorted[i], loads[i]) for i in range(len(edges_sorted))
        ]
        for pos, d in zip(prep.tree_pos, prep.tree_dst_slot):
            result.received[member_ids[d - 1]] = loads[pos]
        if track_sets:
            for pos, d in zip(prep.tree_pos, prep.tree_dst_slot):
                row = carried[pos]
                result.received_sets[member_ids[d - 1]] = {
                    enc[k] for k in np.flatnonzero(row).tolist()
                }
        return result

    # -- Key-tree batch marking ----------------------------------------
    def mark_updated(
        self,
        changed_unodes: Sequence[Id],
        contains: Callable[[Id], bool],
        num_digits: int,
    ) -> List[Id]:
        changed = list(changed_unodes)
        if not changed:
            return []
        packed = pack_ids(changed)
        if packed is None:
            return self._reference.mark_updated(changed, contains, num_digits)
        codes, lens = packed
        if not bool((lens == num_digits).all()) or num_digits > len(MASKS) - 1:
            # Short "u-nodes" would dedup across levels in the reference's
            # marked set; keep that path authoritative.
            return self._reference.mark_updated(changed, contains, num_digits)
        out: List[Id] = []
        for level in range(num_digits):
            prefix_codes = codes & MASKS[level]
            # unique() sorts; for equal-length packed codes, numeric order
            # is the reference's lexicographic digit order.
            _uniq, first = np.unique(prefix_codes, return_index=True)
            for k in first.tolist():
                prefix = changed[k].prefix(level)
                if contains(prefix):
                    out.append(prefix)
        return out


def make_backend() -> NumpyBackend:
    if np is None:
        raise ComputeUnavailable(
            "the 'numpy' compute backend requires numpy "
            "(pip install repro[fast]); falling back to 'reference'"
        )
    return NumpyBackend()


register_backend("numpy", make_backend)
