"""Bit-packed ID/prefix arrays for the vectorized kernels.

An :class:`~repro.core.ids.Id` of up to 8 digits with base <= 256 packs
into one ``uint64``: digit ``k`` occupies bits ``56 - 8k .. 63 - 8k``
(left-aligned, 8 bits per digit), with unused low bits zero.  Two
properties make this the right shape for the paper's prefix algebra:

* **Prefix test as a masked XOR.**  ``a`` and ``b`` agree on their first
  ``l`` digits iff ``(a ^ b) & MASKS[l] == 0``, where ``MASKS[l]`` keeps
  the top ``8*l`` bits.  The Theorem-2 predicate and k-node marking both
  reduce to this one vectorizable comparison plus length bookkeeping.
* **Order preservation.**  For IDs of *equal length*, unsigned code
  order equals lexicographic digit order — so sorting packed codes
  reproduces the reference's ``sorted(..., key=lambda n: n.digits)``
  within a length class.

The paper's own scheme (D=5, B=256) fits with room to spare; schemes
outside ``D <= 8, B <= 256`` simply aren't packable and callers must
fall back to the reference loops (:func:`scheme_packable`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.ids import Id, IdScheme

#: Max digits per packed ID (8 bits each in a uint64).
MAX_PACK_DIGITS = 8

#: ``MASKS[l]`` keeps the top ``l`` digit lanes (bits ``64-8l .. 63``).
#: ``MASKS[0] == 0``: the null prefix matches everything.
MASKS = np.zeros(MAX_PACK_DIGITS + 1, dtype=np.uint64)
for _l in range(1, MAX_PACK_DIGITS + 1):
    MASKS[_l] = np.uint64(((1 << (8 * _l)) - 1) << (64 - 8 * _l))
del _l


def scheme_packable(scheme: IdScheme) -> bool:
    """Can every ID of this scheme pack into one uint64?"""
    return scheme.num_digits <= MAX_PACK_DIGITS and scheme.base <= 256


def pack_digits(digits: Sequence[int]) -> int:
    """Pack a digit tuple into its left-aligned uint64 code (as a Python
    int).  Caller guarantees ``len(digits) <= 8`` and digits ``< 256``."""
    code = 0
    shift = 56
    for d in digits:
        code |= d << shift
        shift -= 8
    return code


def pack_id(node_id: Id) -> Optional[Tuple[int, int]]:
    """``(code, length)`` for an ID, or ``None`` when it doesn't fit.

    The code is cached on the ``Id`` instance (ids are interned across
    the hot paths, so each distinct ID packs once per process).
    """
    cached = getattr(node_id, "_packed", None)
    if cached is not None:
        return cached if cached != () else None
    digits = node_id.digits
    if len(digits) > MAX_PACK_DIGITS or any(d > 255 for d in digits):
        object.__setattr__(node_id, "_packed", ())  # negative-result marker
        return None
    packed = (pack_digits(digits), len(digits))
    object.__setattr__(node_id, "_packed", packed)
    return packed


def pack_ids(ids: Sequence[Id]) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Column arrays ``(codes uint64, lengths int64)`` for a batch of
    IDs, or ``None`` if any member doesn't pack."""
    n = len(ids)
    codes = np.empty(n, dtype=np.uint64)
    lens = np.empty(n, dtype=np.int64)
    for k, node_id in enumerate(ids):
        packed = pack_id(node_id)
        if packed is None:
            return None
        codes[k] = packed[0]
        lens[k] = packed[1]
    return codes, lens


def prefix_compatible_matrix(
    a_codes: np.ndarray,
    a_lens: np.ndarray,
    b_codes: np.ndarray,
    b_lens: np.ndarray,
) -> np.ndarray:
    """Boolean matrix ``M[i, j]``: is ``a_i`` a prefix of ``b_j`` or
    ``b_j`` a prefix of ``a_i``?  (The symmetric prefix relation of
    Theorem 2: equivalent to agreeing on the first ``min(len_a, len_b)``
    digits.)"""
    min_len = np.minimum(a_lens[:, None], b_lens[None, :])
    mask = MASKS[min_len]
    return ((a_codes[:, None] ^ b_codes[None, :]) & mask) == 0
