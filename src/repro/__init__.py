"""repro — a reproduction of *Efficient Group Rekeying Using
Application-Layer Multicast* (X. B. Zhang, S. S. Lam, H. Liu; ICDCS 2005).

The package implements the complete system the paper describes:

* :mod:`repro.core` — user IDs and the ID tree, K-consistent neighbor
  tables, the T-mesh multicast scheme, topology-aware ID assignment, the
  rekey message splitting scheme, group membership, and the
  :class:`~repro.core.group.SecureGroup` application API;
* :mod:`repro.keytree` — the modified key tree, the original
  Wong–Gouda–Lam baseline, and the cluster rekeying heuristic;
* :mod:`repro.crypto` — real (stdlib-only) authenticated symmetric crypto;
* :mod:`repro.net` — GT-ITM transit-stub and PlanetLab-like topologies;
* :mod:`repro.alm` — the NICE and IP-multicast baselines;
* :mod:`repro.sim` — a discrete event simulator;
* :mod:`repro.metrics` / :mod:`repro.experiments` — everything needed to
  regenerate the paper's Figs. 6–14;
* :mod:`repro.verify` / :mod:`repro.trace` — opt-in runtime invariant
  checking and structured tracing/metrics (both zero-overhead when off).

Quickstart::

    from repro import SecureGroup, TransitStubTopology

    topology = TransitStubTopology(num_hosts=65, seed=1)
    group = SecureGroup(topology, server_host=64)
    alice = group.join(0)
    bob = group.join(1)
    group.end_interval()                      # batch rekey + T-mesh delivery
    print(bob.open(alice.seal(b"hello")))     # group-key encrypted data
"""

from .core import (
    Group,
    Id,
    Route,
    rendezvous_member,
    route_toward,
    IdAssigner,
    IdScheme,
    IdTree,
    NeighborTable,
    PAPER_SCHEME,
    PAPER_THRESHOLDS,
    UserRecord,
    data_session,
    rekey_session,
    run_split_rekey,
)
from .core.group import GroupMember, RekeyReport, SecureGroup
from .core.protocols import PROTOCOLS, RekeyProtocol
from .keytree import (
    ClusterRekeyingTree,
    Encryption,
    ModifiedKeyTree,
    OriginalKeyTree,
    RekeyMessage,
)
from .net import (
    MatrixTopology,
    PlanetLabTopology,
    Topology,
    TransitStubParams,
    TransitStubTopology,
)
from .alm import NiceHierarchy, nice_multicast
from .alm.reliable import ReliabilityConfig, ReliableSession, ReliableTmeshNode
from .faults import FaultPlan, FaultStats
from .metrics import RepairStats
from .sim import Network, Node, Simulator
from .trace import MetricsRegistry, TraceContext, tracing

__version__ = "1.0.0"

__all__ = [
    "Group",
    "Id",
    "Route",
    "rendezvous_member",
    "route_toward",
    "IdAssigner",
    "IdScheme",
    "IdTree",
    "NeighborTable",
    "PAPER_SCHEME",
    "PAPER_THRESHOLDS",
    "UserRecord",
    "data_session",
    "rekey_session",
    "run_split_rekey",
    "GroupMember",
    "RekeyReport",
    "SecureGroup",
    "PROTOCOLS",
    "RekeyProtocol",
    "ClusterRekeyingTree",
    "Encryption",
    "ModifiedKeyTree",
    "OriginalKeyTree",
    "RekeyMessage",
    "MatrixTopology",
    "PlanetLabTopology",
    "Topology",
    "TransitStubParams",
    "TransitStubTopology",
    "NiceHierarchy",
    "nice_multicast",
    "ReliabilityConfig",
    "ReliableSession",
    "ReliableTmeshNode",
    "FaultPlan",
    "FaultStats",
    "RepairStats",
    "Network",
    "Node",
    "Simulator",
    "MetricsRegistry",
    "TraceContext",
    "tracing",
    "__version__",
]
