"""The ``"simulator"`` scheduling backend: the discrete event simulator
exposed through the :mod:`repro.net.scheduling` seam.

The adapter is deliberately thin — :class:`~repro.sim.engine.Simulator`
already implements the :class:`~repro.net.scheduling.Scheduler`
protocol, and :class:`~repro.sim.node.Network` subclasses the shared
:class:`~repro.net.scheduling.Transport` fabric without overriding its
delivery logic — so sessions built through this backend are
byte-identical to sessions that constructed the simulator directly.
The committed golden traces (``tests/fixtures/trace_*.jsonl``) and the
fixed-seed oracle suite (``tools/check_invariants.py``) arbitrate that
claim; the cross-backend conformance suite holds this backend and
:mod:`repro.net.eventloop` to the same observable behaviour.
"""

from __future__ import annotations

from ..net.scheduling import SchedulingBackend, register_backend
from ..net.topology import Topology
from .engine import Simulator
from .node import Network


def simulator_backend(topology: Topology) -> SchedulingBackend:
    """A fresh :class:`Simulator` plus a :class:`Network` bound to it."""
    simulator = Simulator()
    return SchedulingBackend("simulator", simulator, Network(simulator, topology))


register_backend("simulator", simulator_backend)
