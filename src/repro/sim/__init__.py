"""Discrete event simulation: engine, message-passing nodes."""

from .engine import Event, Simulator
from .node import MessageStats, Network, Node

__all__ = ["Event", "Simulator", "MessageStats", "Network", "Node"]
