"""Discrete event simulation: engine, message-passing nodes, and the
``"simulator"`` backend of the :mod:`repro.net.scheduling` seam."""

from .adapter import simulator_backend
from .engine import Event, Simulator
from .node import MessageStats, Network, Node

__all__ = [
    "Event",
    "Simulator",
    "MessageStats",
    "Network",
    "Node",
    "simulator_backend",
]
