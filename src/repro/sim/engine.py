"""A small discrete event simulator.

The paper: "For efficiency, we wrote our own discrete event-driven
simulator.  We simulate the sending and the reception of a message as
events."  This engine does exactly that: a time-ordered event queue with
deterministic FIFO tie-breaking, plus message-passing helpers in
:mod:`repro.sim.node`.  The experiment drivers use it to run concurrent
joins and multicast sessions; the quickstart examples use it to run the
secure-group application end to end.

The engine is one implementation of the :class:`repro.net.scheduling.
Scheduler` protocol (exposed as the ``"simulator"`` backend by
:mod:`repro.sim.adapter`); :mod:`repro.net.eventloop` is the other, and
the cross-backend conformance suite holds both to the same observable
semantics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..trace import hooks as _trace_hooks


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, sequence number) so
    simultaneous events run in scheduling order."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    canceled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.canceled = True


class Simulator:
    """Time-ordered event loop."""

    #: Clock capability (see :func:`repro.net.scheduling.clock_of`):
    #: purely virtual time — exact-time assertions hold.
    clock = "virtual"

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self.events_processed = 0
        self._probe: Optional[Callable[["Simulator"], None]] = None
        self._probe_every = 1
        self._probe_countdown = 0

    def set_invariant_probe(
        self,
        probe: Optional[Callable[["Simulator"], None]],
        every: int = 1,
    ) -> None:
        """Install a callback run after every ``every``-th executed event.

        The verification layer uses this to audit protocol state at event
        granularity (e.g. table consistency between interval boundaries).
        ``probe=None`` removes the hook; with no probe installed the event
        loop pays a single falsy test per event.
        """
        if every < 1:
            raise ValueError(f"probe interval must be >= 1, got {every}")
        self._probe = probe
        self._probe_every = every
        self._probe_countdown = every

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Run ``action`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        event = Event(time, next(self._seq), action)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Run the next pending event; False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.canceled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.action()
            if self._probe is not None:
                self._probe_countdown -= 1
                if self._probe_countdown <= 0:
                    self._probe_countdown = self._probe_every
                    self._probe(self)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, simulated time passes
        ``until``, or ``max_events`` have run.  Returns events executed."""
        tctx = _trace_hooks.ACTIVE
        if tctx is None:
            return self._drain(until, max_events)
        with tctx.span("sim.run") as span:
            executed = self._drain(until, max_events)
            span.set(events=executed, now_ms=self.now)
        tctx.registry.inc("sim.events", executed)
        return executed

    def _drain(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            head = self._queue[0]
            if head.canceled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            self.step()
            executed += 1
        if until is not None and (not self._queue or self._queue[0].time > until):
            self.now = max(self.now, until)
        return executed

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.canceled)
