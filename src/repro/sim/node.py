"""Message-passing nodes on top of the event engine.

A :class:`Network` binds a :class:`~repro.sim.engine.Simulator` to a
:class:`~repro.net.topology.Topology`; nodes attach at topology hosts and
exchange messages that arrive after the topology's one-way delay.  This is
the substrate the secure-group application examples run on.

The delivery logic itself lives in :class:`repro.net.scheduling.
Transport` — the scheduling seam both backends share — and
:class:`Network` is the simulator-flavoured adapter over it (see
:mod:`repro.sim.adapter`): it adds nothing but the ``simulator``
attribute name the orchestration layers address the engine by.

Faults: a :class:`~repro.faults.FaultPlan` installed with
:meth:`Network.install_faults` intercepts every send — it may drop the
message, add latency (delay/reorder), or deliver extra copies — and
models crash windows: a host that is down neither sends nor receives.
The legacy ``drop_filter`` hook is kept for ad-hoc tests.
"""

from __future__ import annotations

from ..net.scheduling import MessageStats, Transport, TransportNode
from ..net.topology import Topology
from .engine import Simulator

__all__ = ["MessageStats", "Network", "Node"]


class Network(Transport):
    """Hosts exchanging messages over a topology with simulated delay."""

    def __init__(self, simulator: Simulator, topology: Topology):
        super().__init__(simulator, topology)
        self.simulator = simulator


class Node(TransportNode):
    """A host attached to a network; subclass and override
    :meth:`on_message`."""

    def __init__(self, network: Network, host: int):
        super().__init__(network, host)
        self.network = network
