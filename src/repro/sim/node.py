"""Message-passing nodes on top of the event engine.

A :class:`Network` binds a :class:`~repro.sim.engine.Simulator` to a
:class:`~repro.net.topology.Topology`; nodes attach at topology hosts and
exchange messages that arrive after the topology's one-way delay.  This is
the substrate the secure-group application examples run on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..net.topology import Topology
from .engine import Simulator


@dataclass
class MessageStats:
    """Counters a network keeps about traffic (useful in examples and
    failure-injection tests)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0


class Network:
    """Hosts exchanging messages over a topology with simulated delay."""

    def __init__(self, simulator: Simulator, topology: Topology):
        self.simulator = simulator
        self.topology = topology
        self._nodes: Dict[int, "Node"] = {}
        self.stats = MessageStats()
        #: Optional fault hook: return True to drop a message.
        self.drop_filter: Optional[Callable[[int, int, Any], bool]] = None

    def attach(self, node: "Node") -> None:
        if node.host in self._nodes:
            raise ValueError(f"host {node.host} already attached")
        self._nodes[node.host] = node

    def detach(self, host: int) -> None:
        self._nodes.pop(host, None)

    def node_at(self, host: int) -> Optional["Node"]:
        return self._nodes.get(host)

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue a message; it arrives after the topology one-way delay
        unless the destination detached or the drop filter eats it."""
        self.stats.sent += 1
        if self.drop_filter is not None and self.drop_filter(src, dst, payload):
            self.stats.dropped += 1
            return
        delay = self.topology.one_way_delay(src, dst)

        def deliver() -> None:
            node = self._nodes.get(dst)
            if node is None:
                self.stats.dropped += 1
                return
            self.stats.delivered += 1
            node.on_message(src, payload)

        self.simulator.schedule(delay, deliver)


class Node:
    """A host attached to a network; subclass and override
    :meth:`on_message`."""

    def __init__(self, network: Network, host: int):
        self.network = network
        self.host = host
        network.attach(self)

    def send(self, dst: int, payload: Any) -> None:
        self.network.send(self.host, dst, payload)

    def on_message(self, src: int, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def detach(self) -> None:
        self.network.detach(self.host)
