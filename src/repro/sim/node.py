"""Message-passing nodes on top of the event engine.

A :class:`Network` binds a :class:`~repro.sim.engine.Simulator` to a
:class:`~repro.net.topology.Topology`; nodes attach at topology hosts and
exchange messages that arrive after the topology's one-way delay.  This is
the substrate the secure-group application examples run on.

Faults: a :class:`~repro.faults.FaultPlan` installed with
:meth:`Network.install_faults` intercepts every send — it may drop the
message, add latency (delay/reorder), or deliver extra copies — and
models crash windows: a host that is down neither sends nor receives.
The legacy ``drop_filter`` hook is kept for ad-hoc tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from ..net.topology import Topology
from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.plan import FaultPlan


@dataclass
class MessageStats:
    """Counters a network keeps about traffic (useful in examples and
    failure-injection tests)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0


class Network:
    """Hosts exchanging messages over a topology with simulated delay."""

    def __init__(self, simulator: Simulator, topology: Topology):
        self.simulator = simulator
        self.topology = topology
        self._nodes: Dict[int, "Node"] = {}
        self.stats = MessageStats()
        #: Optional fault hook: return True to drop a message.
        self.drop_filter: Optional[Callable[[int, int, Any], bool]] = None
        #: Optional declarative fault schedule (see :mod:`repro.faults`).
        self.fault_plan: Optional["FaultPlan"] = None

    def install_faults(self, plan: Optional["FaultPlan"]) -> None:
        """Attach (or, with ``None``, remove) a fault plan; every
        subsequent send is filtered through it."""
        self.fault_plan = plan

    def attach(self, node: "Node") -> None:
        if node.host in self._nodes:
            raise ValueError(f"host {node.host} already attached")
        self._nodes[node.host] = node

    def detach(self, host: int) -> None:
        self._nodes.pop(host, None)

    def node_at(self, host: int) -> Optional["Node"]:
        return self._nodes.get(host)

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue a message; it arrives after the topology one-way delay
        unless the destination detached, the drop filter eats it, or the
        fault plan drops it.  The fault plan may also deliver the message
        late (delay/reorder) or more than once (duplication)."""
        self.stats.sent += 1
        if self.drop_filter is not None and self.drop_filter(src, dst, payload):
            self.stats.dropped += 1
            return
        plan = self.fault_plan
        if plan is None:
            extra_delays = (0.0,)
        else:
            extra_delays = plan.apply(src, dst, payload, self.simulator.now)
            if not extra_delays:
                self.stats.dropped += 1
                return
        delay = self.topology.one_way_delay(src, dst)

        def deliver() -> None:
            if plan is not None and plan.is_down(dst, self.simulator.now):
                plan.stats.crash_drops += 1
                self.stats.dropped += 1
                return
            node = self._nodes.get(dst)
            if node is None:
                self.stats.dropped += 1
                return
            self.stats.delivered += 1
            node.on_message(src, payload)

        for extra in extra_delays:
            self.simulator.schedule(delay + extra, deliver)


class Node:
    """A host attached to a network; subclass and override
    :meth:`on_message`."""

    def __init__(self, network: Network, host: int):
        self.network = network
        self.host = host
        network.attach(self)

    def send(self, dst: int, payload: Any) -> None:
        self.network.send(self.host, dst, payload)

    def on_message(self, src: int, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def detach(self) -> None:
        self.network.detach(self.host)
