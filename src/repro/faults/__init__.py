"""Fault injection for the simulated network.

:class:`FaultPlan` declares seeded schedules of message drops, delays,
reordering, duplication, and node crash/recovery windows;
:class:`repro.sim.node.Network` executes them, and
:class:`repro.alm.reliable.ReliableSession` repairs through them.
"""

from .plan import CrashWindow, FaultPlan, FaultStats

__all__ = ["CrashWindow", "FaultPlan", "FaultStats"]
