"""Declarative, seeded fault plans for the simulated network.

The paper's resilience claims (K-consistent tables, Definition 3; key
driven recovery, Section 3.2) are about behaviour *under failure*, yet a
discrete event simulation is only as good as the failures it injects.
:class:`FaultPlan` is the single place faults are described:

* **drops** — lose a fraction of messages, optionally scoped to a time
  window, source/destination hosts, or a payload predicate;
* **delays** — add random extra latency to a fraction of messages;
* **reordering** — deliver a fraction of messages with an extra delay
  drawn from ``[0, spread]``, letting later sends overtake them;
* **duplication** — deliver extra copies of a fraction of messages;
* **crash windows** — a host is down during ``[at, until)``: messages it
  sends or should receive during the window are lost (silent failure,
  exactly Section 3.2's model).

A plan is *seeded*: given the same simulation, the same seed produces the
same fault decisions, so every failure scenario is reproducible and two
runs export byte-identical metrics.  Decisions are drawn from a single
``numpy`` generator in send order; :meth:`FaultPlan.reset` rewinds the
plan for an identical re-run.

The plan plugs into the transport seam — :class:`repro.net.scheduling.
Transport` (and therefore its :class:`repro.sim.node.Network` adapter)
via ``transport.install_faults(plan)``: the transport consults
:meth:`FaultPlan.apply` on every send and :meth:`FaultPlan.is_down` at
every delivery, so faults behave identically under every scheduling
backend.  Pure-function session runners (e.g.
:class:`repro.alm.reliable.ReliableSession`) use the same object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

#: Predicate over ``(src, dst, payload)`` used to scope a fault rule.
MessageMatch = Callable[[int, int, Any], bool]


@dataclass
class FaultStats:
    """What a plan actually injected (one counter per fault class)."""

    messages_seen: int = 0
    drops: int = 0
    delays: int = 0
    reorders: int = 0
    duplicates: int = 0
    crash_drops: int = 0

    def total_injected(self) -> int:
        return (
            self.drops
            + self.delays
            + self.reorders
            + self.duplicates
            + self.crash_drops
        )


@dataclass(frozen=True)
class _Rule:
    """One fault rule: kind, probability, scope, and kind-specific knobs."""

    kind: str  # "drop" | "delay" | "reorder" | "duplicate"
    rate: float
    start: float = 0.0
    end: float = math.inf
    src: Optional[int] = None
    dst: Optional[int] = None
    match: Optional[MessageMatch] = None
    jitter: float = 0.0  # delay: max extra latency
    spread: float = 0.0  # reorder: max extra latency
    copies: int = 1  # duplicate: extra copies

    def applies(self, src: int, dst: int, payload: Any, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.match is not None and not self.match(src, dst, payload):
            return False
        return True


@dataclass(frozen=True)
class CrashWindow:
    """Host ``host`` is silently down during ``[at, until)``."""

    host: int
    at: float
    until: float = math.inf

    def covers(self, time: float) -> bool:
        return self.at <= time < self.until


class FaultPlan:
    """A seeded, declarative schedule of message and node faults.

    Builder methods return ``self`` so plans read as one declaration::

        plan = (
            FaultPlan(seed=7)
            .drop(0.2)                         # 20% uniform loss
            .delay(0.1, jitter=40.0)           # 10% of messages +0..40ms
            .duplicate(0.05)                   # 5% duplicated once
            .crash(host=3, at=100.0, until=900.0)
        )
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._rules: List[_Rule] = []
        self._crashes: List[CrashWindow] = []
        self.stats = FaultStats()

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def _add(self, rule: _Rule) -> "FaultPlan":
        if not 0.0 <= rule.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rule.rate}")
        self._rules.append(rule)
        return self

    def drop(
        self,
        rate: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        match: Optional[MessageMatch] = None,
    ) -> "FaultPlan":
        """Lose ``rate`` of matching messages."""
        return self._add(
            _Rule("drop", rate, start, end, src, dst, match)
        )

    def delay(
        self,
        rate: float,
        jitter: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        match: Optional[MessageMatch] = None,
    ) -> "FaultPlan":
        """Add up to ``jitter`` extra latency to ``rate`` of messages."""
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        return self._add(
            _Rule("delay", rate, start, end, src, dst, match, jitter=jitter)
        )

    def reorder(
        self,
        rate: float,
        spread: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        match: Optional[MessageMatch] = None,
    ) -> "FaultPlan":
        """Hold back ``rate`` of messages by up to ``spread`` so later
        sends can overtake them (classic reordering)."""
        if spread < 0:
            raise ValueError("spread must be non-negative")
        return self._add(
            _Rule("reorder", rate, start, end, src, dst, match, spread=spread)
        )

    def duplicate(
        self,
        rate: float,
        *,
        copies: int = 1,
        start: float = 0.0,
        end: float = math.inf,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        match: Optional[MessageMatch] = None,
    ) -> "FaultPlan":
        """Deliver ``copies`` extra copies of ``rate`` of messages."""
        if copies < 1:
            raise ValueError("duplicate() needs at least one extra copy")
        return self._add(
            _Rule("duplicate", rate, start, end, src, dst, match, copies=copies)
        )

    def crash(
        self, host: int, at: float, until: float = math.inf
    ) -> "FaultPlan":
        """Host is silently down during ``[at, until)``; ``until`` omitted
        means it never recovers."""
        if until <= at:
            raise ValueError(f"empty crash window [{at}, {until})")
        self._crashes.append(CrashWindow(host, at, until))
        return self

    # ------------------------------------------------------------------
    # Interrogation (the simulator-facing API)
    # ------------------------------------------------------------------
    @property
    def rules(self) -> Tuple[_Rule, ...]:
        return tuple(self._rules)

    @property
    def crash_windows(self) -> Tuple[CrashWindow, ...]:
        return tuple(self._crashes)

    def is_down(self, host: int, time: float) -> bool:
        return any(w.host == host and w.covers(time) for w in self._crashes)

    def apply(
        self, src: int, dst: int, payload: Any, now: float
    ) -> List[float]:
        """Decide the fate of one message send.

        Returns a list of *extra* delays, one per copy to deliver on top
        of the topology delay: ``[0.0]`` is normal delivery, ``[]`` is a
        drop, multiple entries are duplicates.  Consumes randomness in
        call order, so identical simulations make identical decisions.
        """
        self.stats.messages_seen += 1
        if self.is_down(src, now):
            self.stats.crash_drops += 1
            return []
        extra = 0.0
        copies = 1
        for rule in self._rules:
            if not rule.applies(src, dst, payload, now):
                continue
            if self._rng.random() >= rule.rate:
                continue
            if rule.kind == "drop":
                self.stats.drops += 1
                return []
            if rule.kind == "delay":
                self.stats.delays += 1
                extra += float(self._rng.uniform(0.0, rule.jitter))
            elif rule.kind == "reorder":
                self.stats.reorders += 1
                extra += float(self._rng.uniform(0.0, rule.spread))
            elif rule.kind == "duplicate":
                self.stats.duplicates += rule.copies
                copies += rule.copies
        return [extra] * copies

    # ------------------------------------------------------------------
    def reset(self) -> "FaultPlan":
        """Rewind the plan for a bit-identical re-run: re-seed the
        generator and zero the counters (rules and crash windows stay)."""
        self._rng = np.random.default_rng(self.seed)
        self.stats = FaultStats()
        return self
