"""Topology and overlay analysis built on networkx.

Utilities a systems paper's appendix would use: structural statistics of
the generated transit-stub graphs, multicast-tree shape analysis, and
Graphviz/DOT export of delivery trees for visual inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from ..alm.base import AlmSessionResult
from ..core.tmesh import SessionResult
from .gtitm import (
    INTER_DOMAIN_DELAY,
    STUB_LINK_DELAY,
    STUB_TRANSIT_DELAY,
    TRANSIT_LINK_DELAY,
    TransitStubTopology,
)
from .routing import RouterGraph


def router_graph_to_networkx(graph: RouterGraph) -> nx.Graph:
    """The router graph as an undirected networkx graph; edges carry
    ``two_way_delay`` and ``link_id`` attributes."""
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_routers))
    for (u, v), link_id in graph._link_ids.items():
        g.add_edge(
            u,
            v,
            link_id=link_id,
            two_way_delay=graph.link_two_way_delay(link_id),
        )
    return g


@dataclass(frozen=True)
class TopologyStats:
    """Structural summary of a transit-stub topology."""

    num_routers: int
    num_links: int
    mean_degree: float
    max_degree: int
    connected: bool
    link_class_counts: Dict[str, int]

    def render(self) -> str:
        classes = ", ".join(
            f"{name}={count}" for name, count in self.link_class_counts.items()
        )
        return (
            f"routers={self.num_routers} links={self.num_links} "
            f"degree mean={self.mean_degree:.2f} max={self.max_degree} "
            f"connected={self.connected}\nlink classes: {classes}"
        )


def _classify_delay(delay: float) -> str:
    for name, (lo, hi) in (
        ("stub", STUB_LINK_DELAY),
        ("stub-transit", STUB_TRANSIT_DELAY),
        ("transit", TRANSIT_LINK_DELAY),
        ("inter-domain", INTER_DOMAIN_DELAY),
    ):
        if lo <= delay <= hi:
            return name
    return "other"


def transit_stub_stats(topology: TransitStubTopology) -> TopologyStats:
    """Degree/connectivity/link-class summary of a generated topology —
    useful for checking a parameterization against the paper's '5000
    routers and 13000 links'."""
    g = router_graph_to_networkx(topology.graph)
    degrees = [d for _, d in g.degree()]
    class_counts: Dict[str, int] = {}
    for _, _, data in g.edges(data=True):
        name = _classify_delay(data["two_way_delay"])
        class_counts[name] = class_counts.get(name, 0) + 1
    return TopologyStats(
        num_routers=g.number_of_nodes(),
        num_links=g.number_of_edges(),
        mean_degree=float(np.mean(degrees)) if degrees else 0.0,
        max_degree=max(degrees) if degrees else 0,
        connected=nx.is_connected(g),
        link_class_counts=dict(sorted(class_counts.items())),
    )


# ----------------------------------------------------------------------
# Multicast delivery trees
# ----------------------------------------------------------------------
def tmesh_tree_to_networkx(session: SessionResult) -> nx.DiGraph:
    """The T-mesh delivery tree of a session (tree edges only — the hops
    that delivered each member's first copy).  Nodes are user-ID strings;
    edges carry the hop delay."""
    g = nx.DiGraph()
    g.add_node(str(session.sender), host=session.sender_host, root=True)
    for member, receipt in session.receipts.items():
        g.add_node(
            str(member),
            host=receipt.host,
            forward_level=receipt.forward_level,
        )
        upstream = receipt.upstream
        upstream_arrival = (
            0.0
            if upstream == session.sender
            else session.receipts[upstream].arrival_time
        )
        g.add_edge(
            str(upstream),
            str(member),
            delay=receipt.arrival_time - upstream_arrival,
        )
    return g


def alm_tree_to_networkx(session: AlmSessionResult) -> nx.DiGraph:
    """A baseline ALM session's delivery tree; nodes are host indices."""
    g = nx.DiGraph()
    g.add_node(session.sender_host, root=True)
    for host, parent in session.upstream.items():
        g.add_edge(parent, host)
    return g


@dataclass(frozen=True)
class TreeStats:
    """Shape of a multicast delivery tree."""

    receivers: int
    depth: int
    max_fanout: int
    mean_fanout: float
    is_tree: bool

    def render(self) -> str:
        return (
            f"receivers={self.receivers} depth={self.depth} "
            f"fanout max={self.max_fanout} mean={self.mean_fanout:.2f} "
            f"tree={self.is_tree}"
        )


def tree_stats(g: nx.DiGraph) -> TreeStats:
    """Depth and fan-out statistics of a delivery tree."""
    roots = [n for n, d in g.in_degree() if d == 0]
    if len(roots) != 1:
        raise ValueError(f"expected a single root, found {roots}")
    root = roots[0]
    depths = nx.single_source_shortest_path_length(g, root)
    out_degrees = [d for n, d in g.out_degree() if d > 0]
    return TreeStats(
        receivers=g.number_of_nodes() - 1,
        depth=max(depths.values()) if depths else 0,
        max_fanout=max(out_degrees) if out_degrees else 0,
        mean_fanout=float(np.mean(out_degrees)) if out_degrees else 0.0,
        is_tree=nx.is_arborescence(g),
    )


def export_dot(g: nx.DiGraph, path: str) -> None:
    """Write a delivery tree as Graphviz DOT (no pydot dependency)."""
    lines = ["digraph multicast {", "  rankdir=TB;"]
    for node, data in g.nodes(data=True):
        shape = "doublecircle" if data.get("root") else "circle"
        lines.append(f'  "{node}" [shape={shape}];')
    for src, dst, data in g.edges(data=True):
        label = f' [label="{data["delay"]:.1f}ms"]' if "delay" in data else ""
        lines.append(f'  "{src}" -> "{dst}"{label};')
    lines.append("}")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
