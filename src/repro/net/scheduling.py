"""The scheduling seam: protocol-layer interfaces for event scheduling
and message transport.

The reliable T-mesh transport (:mod:`repro.alm.reliable`) needs two
capabilities from its runtime: *when* (schedule a callback, cancel it,
read the clock) and *where* (send a message that arrives after the
per-link latency, through any installed fault plan).  This module names
those capabilities as small interfaces — :class:`Scheduler` and the
concrete :class:`Transport` fabric — so protocol code depends on the
seam, never on a particular engine behind it (DESIGN.md §3: protocol
layers stay independent of orchestration layers).

Three backends implement the seam:

* ``"simulator"`` — a thin adapter over the existing discrete event
  simulator (:mod:`repro.sim.adapter`): :class:`repro.sim.engine.
  Simulator` already *is* a :class:`Scheduler`, and :class:`repro.sim.
  node.Network` subclasses :class:`Transport` without overriding its
  delivery logic, so behaviour is byte-identical to the pre-seam code —
  arbitrated by the committed golden traces and the fixed-seed oracle
  suite.
* ``"eventloop"`` — a standalone virtual-clock event loop
  (:mod:`repro.net.eventloop`) with an asyncio-flavoured API and **no**
  ``repro.sim`` import, the substrate the service mode grew from.
* ``"asyncio"`` — a real asyncio loop (:mod:`repro.service.aio`) that
  runs the same virtual-clock contract deterministically by default and
  can pace against the wall clock (``realtime=True``) for the live
  service; its transport subclass pushes frames over asyncio streams.

Backends register themselves in a name -> factory registry
(:func:`register_backend`); :func:`create_backend` resolves the two
built-in names by lazy import — the documented escape hatch that keeps
this module free of eager orchestration-layer imports.

Determinism contract (what the cross-backend conformance suite in
``tests/test_scheduler_conformance.py`` enforces): events fire in
``(time, sequence-number)`` order — simultaneous events run in
scheduling order — cancellation is a tombstone, and ``run(until=...)``
advances the clock to ``until`` even when the queue drains early.  Any
two conforming schedulers drive a :class:`Transport` through the exact
same delivery order, which is why :class:`~repro.alm.reliable.
ReliableSession` outcomes and normalized traces are byte-equal across
backends.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Optional,
    Protocol,
    TYPE_CHECKING,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.plan import FaultPlan
    from .topology import Topology


# ----------------------------------------------------------------------
# The scheduling interface
# ----------------------------------------------------------------------
@runtime_checkable
class ScheduledEvent(Protocol):
    """Handle for one pending callback; ``cancel()`` tombstones it."""

    def cancel(self) -> None: ...


@runtime_checkable
class Scheduler(Protocol):
    """A deterministic virtual-time event loop.

    Implementations must fire callbacks in ``(time, sequence)`` order
    with FIFO tie-breaking for simultaneous events, reject scheduling
    into the past with :class:`ValueError`, and advance ``now`` to
    ``until`` when ``run(until=...)`` outlives the queue.
    """

    now: float

    def schedule(
        self, delay: float, action: Callable[[], None]
    ) -> ScheduledEvent: ...

    def schedule_at(
        self, time: float, action: Callable[[], None]
    ) -> ScheduledEvent: ...

    def step(self) -> bool: ...

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int: ...

    @property
    def pending(self) -> int: ...


# ----------------------------------------------------------------------
# The transport fabric
# ----------------------------------------------------------------------
@dataclass
class MessageStats:
    """Counters a transport keeps about traffic (useful in examples and
    failure-injection tests)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0


class Transport:
    """Hosts exchanging messages over a topology with per-link latency.

    This is the single delivery implementation both backends share: a
    message arrives one-way-delay later unless the destination detached,
    the legacy ``drop_filter`` eats it, or the installed
    :class:`~repro.faults.FaultPlan` drops it.  The fault plan injects
    here — at the transport seam — so loss, delay, reordering,
    duplication, and crash windows behave identically under every
    scheduler.
    """

    def __init__(self, scheduler: Scheduler, topology: "Topology"):
        self.scheduler = scheduler
        self.topology = topology
        self._nodes: Dict[int, "TransportNode"] = {}
        self.stats = MessageStats()
        #: Optional fault hook: return True to drop a message.
        self.drop_filter: Optional[Callable[[int, int, Any], bool]] = None
        #: Optional declarative fault schedule (see :mod:`repro.faults`).
        self.fault_plan: Optional["FaultPlan"] = None

    def install_faults(self, plan: Optional["FaultPlan"]) -> None:
        """Attach (or, with ``None``, remove) a fault plan; every
        subsequent send is filtered through it."""
        self.fault_plan = plan

    def attach(self, node: "TransportNode") -> None:
        if node.host in self._nodes:
            raise ValueError(f"host {node.host} already attached")
        self._nodes[node.host] = node

    def detach(self, host: int) -> None:
        self._nodes.pop(host, None)

    def node_at(self, host: int) -> Optional["TransportNode"]:
        return self._nodes.get(host)

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Queue a message; it arrives after the topology one-way delay
        unless the destination detached, the drop filter eats it, or the
        fault plan drops it.  The fault plan may also deliver the message
        late (delay/reorder) or more than once (duplication)."""
        self.stats.sent += 1
        if self.drop_filter is not None and self.drop_filter(src, dst, payload):
            self.stats.dropped += 1
            return
        plan = self.fault_plan
        if plan is None:
            extra_delays: Tuple[float, ...] = (0.0,)
        else:
            extra_delays = plan.apply(src, dst, payload, self.scheduler.now)
            if not extra_delays:
                self.stats.dropped += 1
                return
        delay = self.topology.one_way_delay(src, dst)

        def deliver() -> None:
            self._dispatch(src, dst, payload, plan)

        for extra in extra_delays:
            self.scheduler.schedule(delay + extra, deliver)

    def _dispatch(
        self, src: int, dst: int, payload: Any, plan: Optional["FaultPlan"]
    ) -> None:
        """Hand a due message to its destination.  The base fabric
        delivers in-process; :class:`repro.service.transport.
        StreamTransport` overrides this to push the message over a real
        asyncio stream before the same terminal delivery runs on the far
        side."""
        self._deliver(src, dst, payload, plan)

    def _deliver(
        self, src: int, dst: int, payload: Any, plan: Optional["FaultPlan"]
    ) -> None:
        """Terminal delivery: crash-window check, node lookup, stats,
        ``on_message``.  Every path into a node funnels through here so
        fault semantics stay identical across backends."""
        if plan is not None and plan.is_down(dst, self.scheduler.now):
            plan.stats.crash_drops += 1
            self.stats.dropped += 1
            return
        node = self._nodes.get(dst)
        if node is None:
            self.stats.dropped += 1
            return
        self.stats.delivered += 1
        node.on_message(src, payload)


class TransportNode:
    """A host attached to a transport; subclass and override
    :meth:`on_message`."""

    def __init__(self, transport: Transport, host: int):
        self.transport = transport
        self.host = host
        transport.attach(self)

    @property
    def scheduler(self) -> Scheduler:
        return self.transport.scheduler

    def send(self, dst: int, payload: Any) -> None:
        self.transport.send(self.host, dst, payload)

    def on_message(self, src: int, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def detach(self) -> None:
        self.transport.detach(self.host)


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
@dataclass
class SchedulingBackend:
    """One assembled backend: a scheduler plus the transport bound to it."""

    name: str
    scheduler: Scheduler
    transport: Transport


BackendFactory = Callable[["Topology"], SchedulingBackend]

_BACKEND_FACTORIES: Dict[str, BackendFactory] = {}

#: Built-in backends resolved by lazy import on first use; the imported
#: module calls :func:`register_backend` at import time.  Lazy loading is
#: deliberate: ``repro.net`` must never import ``repro.sim`` eagerly
#: (the layering-import lint rule), and the event loop stays optional.
_LAZY_BACKENDS: Dict[str, str] = {
    "simulator": "repro.sim.adapter",
    "eventloop": "repro.net.eventloop",
    "asyncio": "repro.service.aio",
}


def clock_of(scheduler: Scheduler) -> str:
    """The scheduler's clock capability: ``"virtual"`` (deterministic
    virtual time — exact-time assertions hold) or ``"wall"`` (paced
    against the wall clock — time assertions are lower bounds only).
    Schedulers advertise it via a ``clock`` attribute; absent means
    virtual, which every pre-service backend is."""
    return getattr(scheduler, "clock", "virtual")


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _BACKEND_FACTORIES[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Every backend name ``create_backend`` can resolve."""
    return tuple(sorted(set(_BACKEND_FACTORIES) | set(_LAZY_BACKENDS)))


def create_backend(name: str, topology: "Topology") -> SchedulingBackend:
    """Assemble a fresh scheduler + transport pair for ``topology``."""
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None and name in _LAZY_BACKENDS:
        importlib.import_module(_LAZY_BACKENDS[name])
        factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown scheduling backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return factory(topology)
