"""Global Network Positioning (GNP) coordinates — the Section-5 extension.

Ng and Zhang's GNP estimates the RTT between two hosts from coordinates
in a low-dimensional geometric space.  The paper points out (Section 5)
that GNP "can be used in our system to reduce the probing cost of each
joining user: if the key server knows the GNP coordinates of all the
users, it can determine the ID for a joining user by centralized
computing."  This module implements that extension:

* :class:`GnpModel` — fit landmark coordinates from measured
  landmark-to-landmark RTTs, then solve each host's coordinates from its
  RTTs to the landmarks only (``L`` probes per host instead of the join
  protocol's ``O(P * D * N^(1/D))`` queries + pings);
* :class:`GnpEstimatedTopology` — a :class:`~repro.net.topology.Topology`
  view whose RTTs are GNP estimates, pluggable into the centralized ID
  assignment controller.

The GNP ablation benchmark quantifies what the estimate costs in ID
quality versus direct measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import optimize

from .topology import Topology


def _trilaterate(target_rtts: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """Linear least-squares multilateration: subtracting the first
    anchor's sphere equation from the others linearizes the system."""
    a0, d0 = anchors[0], target_rtts[0]
    rows = 2.0 * (anchors[1:] - a0)
    rhs = (
        (anchors[1:] ** 2).sum(axis=1)
        - (a0 ** 2).sum()
        - target_rtts[1:] ** 2
        + d0 ** 2
    )
    solution, *_ = np.linalg.lstsq(rows, rhs, rcond=None)
    return solution


def _fit_point(
    target_rtts: np.ndarray,
    anchors: np.ndarray,
    fallback: np.ndarray,
) -> np.ndarray:
    """Coordinates minimizing squared relative error to the anchors:
    linear trilateration for the starting point, Nelder-Mead to polish."""

    def loss(x: np.ndarray) -> float:
        dist = np.sqrt(((anchors - x) ** 2).sum(axis=1)) + 1e-9
        rel = (dist - target_rtts) / np.maximum(target_rtts, 1.0)
        return float((rel ** 2).sum())

    try:
        x0 = _trilaterate(target_rtts, anchors)
    except np.linalg.LinAlgError:  # degenerate anchor geometry
        x0 = fallback
    if not np.all(np.isfinite(x0)) or loss(x0) > loss(fallback):
        x0 = fallback
    result = optimize.minimize(loss, x0, method="Nelder-Mead",
                               options={"maxiter": 600, "xatol": 0.01})
    return result.x if result.fun < loss(x0) else x0


@dataclass
class GnpModel:
    """Fitted GNP coordinates for every host of a topology."""

    landmarks: List[int]
    coordinates: np.ndarray  # (num_hosts, dim)
    probes_per_host: int     # = number of landmarks

    def estimated_rtt(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        return float(
            np.sqrt(((self.coordinates[a] - self.coordinates[b]) ** 2).sum())
        )

    def relative_error(self, topology: Topology, pairs: Sequence) -> np.ndarray:
        """|estimate - actual| / actual over a sample of host pairs."""
        errors = []
        for a, b in pairs:
            actual = topology.rtt(a, b)
            if actual <= 0:
                continue
            errors.append(abs(self.estimated_rtt(a, b) - actual) / actual)
        return np.asarray(errors)


def fit_gnp(
    topology: Topology,
    num_landmarks: int = 12,
    dim: int = 6,
    seed: int = 0,
    hosts: Optional[Sequence[int]] = None,
) -> GnpModel:
    """Fit a GNP model: landmarks first (joint minimization over their
    pairwise RTTs), then every other host independently against the
    landmarks — exactly the two-phase procedure of Ng & Zhang."""
    if num_landmarks < dim + 1:
        raise ValueError("need at least dim+1 landmarks")
    rng = np.random.default_rng(seed)
    host_list = list(hosts) if hosts is not None else list(range(topology.num_hosts))
    if num_landmarks > len(host_list):
        raise ValueError("more landmarks than hosts")
    landmarks = sorted(
        int(h)
        for h in rng.choice(host_list, size=num_landmarks, replace=False)
    )

    # --- phase 1: landmark coordinates ---------------------------------
    # Classical multidimensional scaling gives the optimal Euclidean
    # embedding for (near-)metric data directly; a Nelder-Mead polish
    # then minimizes GNP's relative-error objective from that start.
    lm_rtt = np.array(
        [[topology.rtt(a, b) for b in landmarks] for a in landmarks]
    )
    squared = lm_rtt ** 2
    centering = np.eye(num_landmarks) - np.ones((num_landmarks, num_landmarks)) / num_landmarks
    gram = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:dim]
    lm_coords = eigenvectors[:, order] * np.sqrt(
        np.maximum(eigenvalues[order], 0.0)
    )

    def landmark_loss(flat: np.ndarray) -> float:
        pts = flat.reshape(num_landmarks, dim)
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=2)) + 1e-9
        mask = ~np.eye(num_landmarks, dtype=bool)
        rel = (dist[mask] - lm_rtt[mask]) / np.maximum(lm_rtt[mask], 1.0)
        return float((rel ** 2).sum())

    fitted = optimize.minimize(
        landmark_loss, lm_coords.ravel(), method="Nelder-Mead",
        options={"maxiter": 2000, "xatol": 0.05, "fatol": 1e-6},
    )
    if fitted.fun < landmark_loss(lm_coords.ravel()):
        lm_coords = fitted.x.reshape(num_landmarks, dim)

    # --- phase 2: every host against the landmarks ---------------------
    coords = np.zeros((topology.num_hosts, dim))
    for idx, lm in enumerate(landmarks):
        coords[lm] = lm_coords[idx]
    center = lm_coords.mean(axis=0)
    for host in host_list:
        if host in landmarks:
            continue
        targets = np.array([topology.rtt(host, lm) for lm in landmarks])
        coords[host] = _fit_point(targets, lm_coords, center)

    return GnpModel(
        landmarks=landmarks,
        coordinates=coords,
        probes_per_host=num_landmarks,
    )


class GnpEstimatedTopology(Topology):
    """A topology whose RTTs are GNP estimates over a real substrate.

    Access RTTs pass through unchanged (a host knows its own access link
    precisely); only host-to-host RTTs are estimated.  Plug this into
    :class:`~repro.experiments.common.CentralizedController` to get the
    paper's "centralized computing" ID assignment without per-join
    probing.
    """

    def __init__(self, base: Topology, model: GnpModel):
        self.base = base
        self.model = model

    @property
    def num_hosts(self) -> int:
        return self.base.num_hosts

    def rtt(self, a: int, b: int) -> float:
        return self.model.estimated_rtt(a, b)

    def access_rtt(self, host: int) -> float:
        return self.base.access_rtt(host)
