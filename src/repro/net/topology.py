"""Network topology interface used by all simulations.

The paper's simulator runs on two topologies (Section 4): a PlanetLab
all-pairs RTT matrix and a GT-ITM transit-stub router topology.  Both are
exposed behind this interface so the protocol and experiment code never
needs to know which one it is running on.

Hosts are dense integers ``0 .. num_hosts-1``.  All delays are milliseconds.
The paper sets one-way delay between two members to half of their RTT; we
keep that convention: :meth:`Topology.one_way_delay` is ``rtt / 2``.

Dense RTT cache: simulation inner loops (the FORWARD fan-out, ID
assignment's gateway-RTT measurements, table construction) ask for
millions of pairwise RTTs.  :meth:`Topology.ensure_rtt_matrix` lazily
materializes the full host-to-host RTT matrix as a numpy array — built
with one batched shortest-path call on router topologies — after which
scalar :meth:`rtt` calls become O(1) array lookups and bulk callers can
use :meth:`rtt_many` / :meth:`one_way_rows` for vectorized access.  The
cached values are exactly the values the scalar path computes, so enabling
the cache never changes simulation results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence

import numpy as np


class Topology(ABC):
    """Abstract network substrate: pairwise host RTTs, access links, and
    (optionally) routed physical paths for link-stress accounting."""

    # Dense-cache state; instance attributes shadow these once built.
    _rtt_dense: Optional[np.ndarray] = None
    _rtt_rows: Optional[List[List[float]]] = None
    _ow_rows: Optional[List[List[float]]] = None

    @property
    @abstractmethod
    def num_hosts(self) -> int:
        """Number of attachable end hosts."""

    @abstractmethod
    def rtt(self, a: int, b: int) -> float:
        """End-host to end-host round-trip time in milliseconds."""

    def one_way_delay(self, a: int, b: int) -> float:
        """One-way delay, defined as half the RTT (paper, Section 4)."""
        return self.rtt(a, b) / 2.0

    @abstractmethod
    def access_rtt(self, host: int) -> float:
        """RTT between a host and its gateway (first-hop) router — the
        ``h(u, gw_u)`` of Section 3.1.2, measured there with ping."""

    def gateway_rtt(self, a: int, b: int) -> float:
        """RTT between the gateway routers of two hosts — the ``r(u, w)``
        of Section 3.1.2: ``h(u,w) - h(u,gw_u) - h(w,gw_w)``, floored at
        zero (two hosts on the same router have identical gateways)."""
        if a == b:
            return 0.0
        return max(0.0, self.rtt(a, b) - self.access_rtt(a) - self.access_rtt(b))

    # ------------------------------------------------------------------
    # Dense RTT cache
    # ------------------------------------------------------------------
    def _build_rtt_matrix(self) -> np.ndarray:
        """Subclass hook: the full host-to-host RTT matrix, with entries
        exactly equal to what :meth:`rtt` returns pair by pair.  The
        default computes it scalar-by-scalar; router topologies override
        with a batched construction."""
        n = self.num_hosts
        m = np.empty((n, n), dtype=np.float64)
        for a in range(n):
            for b in range(n):
                m[a, b] = self.rtt(a, b)
        return m

    def ensure_rtt_matrix(self) -> np.ndarray:
        """Build (once) and return the dense host-to-host RTT matrix.
        After this call, scalar :meth:`rtt` lookups are served from the
        cache.  The returned array is shared — treat it as read-only."""
        if self._rtt_dense is None:
            m = self._build_rtt_matrix()
            self._rtt_dense = m
            self._rtt_rows = m.tolist()
        return self._rtt_dense

    def rtt_matrix_or_none(self) -> Optional[np.ndarray]:
        """The dense RTT matrix if already built, else ``None`` (never
        triggers a build)."""
        return self._rtt_dense

    def has_rtt_matrix(self) -> bool:
        return self._rtt_dense is not None

    def one_way_rows(self) -> Optional[List[List[float]]]:
        """Dense one-way delays (``rtt / 2``) as a list of row lists for
        cheap scalar indexing in event loops; ``None`` until
        :meth:`ensure_rtt_matrix` has run."""
        if self._ow_rows is None and self._rtt_dense is not None:
            self._ow_rows = (self._rtt_dense / 2.0).tolist()
        return self._ow_rows

    def rtt_many(self, src: int, hosts: Sequence[int]) -> np.ndarray:
        """RTTs from ``src`` to each host in ``hosts`` as a float64 array.
        One fancy-index read when the dense matrix is built; otherwise a
        scalar fallback loop with identical values."""
        m = self._rtt_dense
        if m is not None:
            return m[src, np.asarray(hosts, dtype=np.intp)]
        return np.array([self.rtt(src, h) for h in hosts], dtype=np.float64)

    def rtt_to_many(self, dst: int, hosts: Sequence[int]) -> np.ndarray:
        """RTTs from each host in ``hosts`` to ``dst`` — the transposed
        orientation of :meth:`rtt_many`, kept separate because dense
        matrices built from per-source shortest paths are only symmetric
        up to rounding and callers must preserve the scalar operand
        order."""
        m = self._rtt_dense
        if m is not None:
            return m[np.asarray(hosts, dtype=np.intp), dst]
        return np.array([self.rtt(h, dst) for h in hosts], dtype=np.float64)

    # ------------------------------------------------------------------
    # Physical-path accounting (only meaningful on router topologies)
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Number of physical network links, 0 when the topology is a bare
        RTT matrix (PlanetLab)."""
        return 0

    def supports_link_stress(self) -> bool:
        """True iff :meth:`path_links` is available."""
        return self.num_links > 0

    def path_links(self, a: int, b: int) -> Sequence[int]:
        """Physical link IDs on the routed path from host ``a`` to host
        ``b`` (used to compute per-link stress and per-link encryption
        counts for Fig. 13)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no router-level paths"
        )


def validate_rtt_matrix(
    topology: Topology, sample: Sequence[int], force_scalar: bool = False
) -> List[str]:
    """Sanity-check a topology over a sample of hosts.

    Returns a list of human-readable violations (empty when clean):
    asymmetric RTTs, non-zero diagonal, or negative delays.  Used by the
    test suite and by topology constructors in debug mode.

    When the topology's dense RTT matrix is built, the clean case is
    decided with three vectorized checks instead of ``len(sample) ** 2``
    Python-level ``rtt()`` calls; any violation is then *reported* by a
    scalar sweep over the same dense matrix, so the dirty-path messages
    are identical to the pure-scalar path's and never diverge from what
    the vectorized checks saw (``topology.rtt()`` may be served from a
    separate row cache).  Pass ``force_scalar=True`` to skip the
    vectorized path entirely (used by the equivalence tests).
    """
    sample = list(sample)
    if not force_scalar:
        m = topology.rtt_matrix_or_none()
        if m is not None and sample:
            idx = np.asarray(sample, dtype=np.intp)
            sub = m[np.ix_(idx, idx)]
            clean = (
                not np.any(m[idx, idx] != 0.0)
                and not np.any(sub < 0)
                and not np.any(np.abs(sub - sub.T) > 1e-9)
            )
            if clean:
                return []
            rows = m.tolist()
            return _scalar_sweep(lambda a, b: rows[a][b], sample)
    return _scalar_sweep(topology.rtt, sample)


def _scalar_sweep(
    rtt: Callable[[int, int], float], sample: Sequence[int]
) -> List[str]:
    """The reference host-pair sweep behind :func:`validate_rtt_matrix`:
    both the scalar path and the vectorized path's violation reporting run
    this exact loop, differing only in where ``rtt`` reads from."""
    problems: List[str] = []
    for a in sample:
        if rtt(a, a) != 0.0:
            problems.append(f"rtt({a},{a}) = {rtt(a, a)} != 0")
        for b in sample:
            r_ab = rtt(a, b)
            r_ba = rtt(b, a)
            if r_ab < 0:
                problems.append(f"rtt({a},{b}) = {r_ab} < 0")
            if abs(r_ab - r_ba) > 1e-9:
                problems.append(f"rtt asymmetry: ({a},{b}) {r_ab} vs {r_ba}")
    return problems
