"""Network topology interface used by all simulations.

The paper's simulator runs on two topologies (Section 4): a PlanetLab
all-pairs RTT matrix and a GT-ITM transit-stub router topology.  Both are
exposed behind this interface so the protocol and experiment code never
needs to know which one it is running on.

Hosts are dense integers ``0 .. num_hosts-1``.  All delays are milliseconds.
The paper sets one-way delay between two members to half of their RTT; we
keep that convention: :meth:`Topology.one_way_delay` is ``rtt / 2``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence


class Topology(ABC):
    """Abstract network substrate: pairwise host RTTs, access links, and
    (optionally) routed physical paths for link-stress accounting."""

    @property
    @abstractmethod
    def num_hosts(self) -> int:
        """Number of attachable end hosts."""

    @abstractmethod
    def rtt(self, a: int, b: int) -> float:
        """End-host to end-host round-trip time in milliseconds."""

    def one_way_delay(self, a: int, b: int) -> float:
        """One-way delay, defined as half the RTT (paper, Section 4)."""
        return self.rtt(a, b) / 2.0

    @abstractmethod
    def access_rtt(self, host: int) -> float:
        """RTT between a host and its gateway (first-hop) router — the
        ``h(u, gw_u)`` of Section 3.1.2, measured there with ping."""

    def gateway_rtt(self, a: int, b: int) -> float:
        """RTT between the gateway routers of two hosts — the ``r(u, w)``
        of Section 3.1.2: ``h(u,w) - h(u,gw_u) - h(w,gw_w)``, floored at
        zero (two hosts on the same router have identical gateways)."""
        if a == b:
            return 0.0
        return max(0.0, self.rtt(a, b) - self.access_rtt(a) - self.access_rtt(b))

    # ------------------------------------------------------------------
    # Physical-path accounting (only meaningful on router topologies)
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Number of physical network links, 0 when the topology is a bare
        RTT matrix (PlanetLab)."""
        return 0

    def supports_link_stress(self) -> bool:
        """True iff :meth:`path_links` is available."""
        return self.num_links > 0

    def path_links(self, a: int, b: int) -> Sequence[int]:
        """Physical link IDs on the routed path from host ``a`` to host
        ``b`` (used to compute per-link stress and per-link encryption
        counts for Fig. 13)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no router-level paths"
        )


def validate_rtt_matrix(topology: Topology, sample: Sequence[int]) -> List[str]:
    """Sanity-check a topology over a sample of hosts.

    Returns a list of human-readable violations (empty when clean):
    asymmetric RTTs, non-zero diagonal, or negative delays.  Used by the
    test suite and by topology constructors in debug mode.
    """
    problems: List[str] = []
    for a in sample:
        if topology.rtt(a, a) != 0.0:
            problems.append(f"rtt({a},{a}) = {topology.rtt(a, a)} != 0")
        for b in sample:
            r_ab = topology.rtt(a, b)
            r_ba = topology.rtt(b, a)
            if r_ab < 0:
                problems.append(f"rtt({a},{b}) = {r_ab} < 0")
            if abs(r_ab - r_ba) > 1e-9:
                problems.append(f"rtt asymmetry: ({a},{b}) {r_ab} vs {r_ba}")
    return problems
