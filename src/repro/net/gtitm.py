"""Transit-stub topology generator in the style of GT-ITM.

The paper's GT-ITM topology has 5000 routers and 13000 network links, with
two-way propagation delays drawn per link class (Section 4):

* link within a stub domain:                 uniform in [0.1, 1] ms
* link connecting a stub and a transit router: uniform in [2, 3] ms
* link between transit routers, same domain:   uniform in [10, 15] ms
* link connecting two transit domains:         uniform in [75, 85] ms

GT-ITM itself is external C software; this module re-implements the
transit-stub construction directly (random connected intra-domain graphs,
one transit attachment per stub domain, a connected inter-domain core).
The default parameters yield 5000 routers and ~13000 links like the paper.

Members (end hosts) attach to randomly selected stub routers via an access
link whose RTT is drawn from the stub-link delay class, which supplies the
``h(u, gw_u)`` access RTTs used by the ID-assignment protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .routing import RouterGraph
from .topology import Topology

# Two-way delay ranges (ms) per link class, from the paper.
STUB_LINK_DELAY = (0.1, 1.0)
STUB_TRANSIT_DELAY = (2.0, 3.0)
TRANSIT_LINK_DELAY = (10.0, 15.0)
INTER_DOMAIN_DELAY = (75.0, 85.0)


@dataclass(frozen=True)
class TransitStubParams:
    """Shape parameters of the generated transit-stub graph.

    Defaults reproduce the paper's scale: 10 transit domains x 10 transit
    routers, 4 stub domains per transit router, 12 routers per stub domain
    = 100 + 4800 = 4900 routers plus enough intra-stub extra edges to reach
    ~13000 links.
    """

    transit_domains: int = 10
    transit_per_domain: int = 10
    stubs_per_transit: int = 4
    stub_size: int = 12
    # Probability of each extra (non-spanning-tree) edge inside a stub
    # domain / transit domain; tuned so the default graph has ~13000 links.
    stub_extra_edge_prob: float = 0.36
    transit_extra_edge_prob: float = 0.30
    # Extra random inter-domain links beyond the connecting ring.
    extra_inter_domain_links: int = 5

    def num_routers(self) -> int:
        transit = self.transit_domains * self.transit_per_domain
        stubs = transit * self.stubs_per_transit * self.stub_size
        return transit + stubs


def _random_connected_edges(
    nodes: Sequence[int], extra_prob: float, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """A random connected graph on ``nodes``: a random spanning tree plus
    independent extra edges with probability ``extra_prob``."""
    n = len(nodes)
    edges: List[Tuple[int, int]] = []
    order = list(nodes)
    rng.shuffle(order)
    present = set()
    for i in range(1, n):
        attach = order[int(rng.integers(0, i))]
        key = (min(order[i], attach), max(order[i], attach))
        edges.append(key)
        present.add(key)
    for i in range(n):
        for k in range(i + 1, n):
            key = (nodes[i], nodes[k])
            if key not in present and rng.random() < extra_prob:
                edges.append(key)
                present.add(key)
    return edges


class TransitStubTopology(Topology):
    """A routed transit-stub topology with attached end hosts."""

    def __init__(
        self,
        num_hosts: int,
        params: TransitStubParams = TransitStubParams(),
        seed: int = 0,
    ):
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        self.params = params
        rng = np.random.default_rng(seed)
        edges: List[Tuple[int, int, float]] = []

        def delay(rng_range: Tuple[float, float]) -> float:
            return float(rng.uniform(rng_range[0], rng_range[1]))

        # --- transit routers, grouped by domain -----------------------
        transit: List[List[int]] = []
        next_router = 0
        for _ in range(params.transit_domains):
            domain = list(range(next_router, next_router + params.transit_per_domain))
            next_router += params.transit_per_domain
            transit.append(domain)
            for u, v in _random_connected_edges(
                domain, params.transit_extra_edge_prob, rng
            ):
                edges.append((u, v, delay(TRANSIT_LINK_DELAY)))

        # --- inter-domain core: a ring plus random chords --------------
        domains = params.transit_domains
        if domains > 1:
            for d in range(domains):
                u = transit[d][int(rng.integers(0, params.transit_per_domain))]
                v = transit[(d + 1) % domains][
                    int(rng.integers(0, params.transit_per_domain))
                ]
                edges.append((u, v, delay(INTER_DOMAIN_DELAY)))
            for _ in range(params.extra_inter_domain_links):
                d1, d2 = rng.choice(domains, size=2, replace=False)
                u = transit[d1][int(rng.integers(0, params.transit_per_domain))]
                v = transit[d2][int(rng.integers(0, params.transit_per_domain))]
                if not any(
                    (min(u, v), max(u, v)) == (min(a, b), max(a, b))
                    for a, b, _ in edges
                ):
                    edges.append((u, v, delay(INTER_DOMAIN_DELAY)))

        # --- stub domains hung off each transit router ------------------
        self._stub_routers: List[int] = []
        self._stub_domain_of: dict = {}
        stub_domain_index = 0
        for domain in transit:
            for t_router in domain:
                for _ in range(params.stubs_per_transit):
                    stub = list(range(next_router, next_router + params.stub_size))
                    next_router += params.stub_size
                    self._stub_routers.extend(stub)
                    for r in stub:
                        self._stub_domain_of[r] = stub_domain_index
                    stub_domain_index += 1
                    for u, v in _random_connected_edges(
                        stub, params.stub_extra_edge_prob, rng
                    ):
                        edges.append((u, v, delay(STUB_LINK_DELAY)))
                    gateway = stub[int(rng.integers(0, params.stub_size))]
                    edges.append((gateway, t_router, delay(STUB_TRANSIT_DELAY)))

        self.graph = RouterGraph(next_router, edges)

        # --- attach hosts to random stub routers -----------------------
        self._num_hosts = num_hosts
        self._host_router = rng.choice(
            np.asarray(self._stub_routers), size=num_hosts
        ).astype(int)
        self._access = rng.uniform(
            STUB_LINK_DELAY[0], STUB_LINK_DELAY[1], size=num_hosts
        )

    # ------------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return self._num_hosts

    @property
    def num_links(self) -> int:
        return self.graph.num_links

    @property
    def num_routers(self) -> int:
        return self.graph.num_routers

    def host_router(self, host: int) -> int:
        """Gateway (first-hop) router of a host."""
        return int(self._host_router[host])

    def access_rtt(self, host: int) -> float:
        return float(self._access[host])

    def rtt(self, a: int, b: int) -> float:
        rows = self._rtt_rows
        if rows is not None:
            return rows[a][b]
        if a == b:
            return 0.0
        ra, rb = self.host_router(a), self.host_router(b)
        core = 0.0 if ra == rb else 2.0 * self.graph.one_way_delay(ra, rb)
        return self.access_rtt(a) + core + self.access_rtt(b)

    def _build_rtt_matrix(self) -> np.ndarray:
        """Dense host RTT matrix via one batched Dijkstra over the distinct
        gateway routers.  Entry values match the scalar :meth:`rtt` path
        bit for bit: same per-source distances, same operation order."""
        routers = self._host_router
        unique, inverse = np.unique(routers, return_inverse=True)
        dist = self.graph.delays_from_many(unique)  # (U, num_routers)
        if not np.all(np.isfinite(dist)):
            raise ValueError("router graph is not connected")
        core = 2.0 * dist[inverse][:, routers]  # (H, H) router-level cores
        core[routers[:, None] == routers[None, :]] = 0.0
        acc = self._access
        m = (acc[:, None] + core) + acc[None, :]
        np.fill_diagonal(m, 0.0)
        return m

    def path_links(self, a: int, b: int) -> Sequence[int]:
        ra, rb = self.host_router(a), self.host_router(b)
        if ra == rb:
            return []
        return self.graph.path_links(ra, rb)

    def stub_domain_of_host(self, host: int) -> int:
        """Index of the stub domain a host's gateway belongs to (used by
        tests asserting proximity-aware ID assignment)."""
        return self._stub_domain_of[self.host_router(host)]
