"""Standalone event-loop backend for the scheduling seam.

A deterministic virtual-clock event loop that implements
:class:`repro.net.scheduling.Scheduler` with **no** ``repro.sim``
import: the reliable T-mesh transport (and, later, the always-on
rekeying service) can run on it without pulling in the discrete event
simulator.  The API is asyncio-flavoured — :meth:`EventLoop.time`,
:meth:`EventLoop.call_soon` / :meth:`EventLoop.call_later` /
:meth:`EventLoop.call_at` return cancellable :class:`TimerHandle`\\ s,
mirroring ``asyncio.AbstractEventLoop`` — so a future service mode can
swap the virtual clock for a real one and back the same callbacks with
sockets.

Semantics match the simulator engine exactly (the cross-backend
conformance suite in ``tests/test_scheduler_conformance.py`` and the
stateful model in ``tests/test_scheduler_stateful.py`` hold both to the
same reference):

* callbacks fire in ``(when, sequence)`` order — simultaneous timers
  run in scheduling order (deterministic FIFO tie-breaking);
* :meth:`TimerHandle.cancel` tombstones a pending timer;
* scheduling into the past raises :class:`ValueError`;
* ``run(until=...)`` fires everything due at or before ``until`` and
  advances the clock to ``until`` even when the queue drains early.

The loop is *seeded*: :attr:`EventLoop.rng` is a
``numpy.random.Generator`` derived from the constructor seed, the one
sanctioned entropy source for backend-local randomness (e.g. socket
retry jitter in a live deployment) so event-loop runs stay
byte-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

import numpy as np

from ..trace import hooks as _trace_hooks
from .scheduling import SchedulingBackend, Transport, register_backend


class TimerHandle:
    """One pending callback; orders by ``(when, sequence)`` so
    simultaneous timers keep FIFO order.  ``cancel()`` tombstones the
    heap entry (asyncio's handle contract)."""

    __slots__ = ("when", "seq", "_callback", "_cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None]):
        self.when = when
        self.seq = seq
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class EventLoop:
    """Deterministic virtual-clock event loop (asyncio-compatible API)."""

    #: Clock capability (see :func:`repro.net.scheduling.clock_of`):
    #: purely virtual time — exact-time assertions hold.
    clock = "virtual"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.now = 0.0
        self._heap: List[TimerHandle] = []
        self._seq = itertools.count()
        self.events_processed = 0
        #: backend-local randomness, a deterministic function of ``seed``
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # The Scheduler interface
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None]
    ) -> TimerHandle:
        """Run ``action`` after ``delay`` virtual time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(
        self, time: float, action: Callable[[], None]
    ) -> TimerHandle:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        handle = TimerHandle(time, next(self._seq), action)
        heapq.heappush(self._heap, handle)
        return handle

    def step(self) -> bool:
        """Run the next pending timer; False when the queue is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle._cancelled:
                continue
            self.now = handle.when
            self.events_processed += 1
            handle._callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run timers until the queue drains, virtual time passes
        ``until``, or ``max_events`` have run.  Returns timers executed.

        Traced runs emit the same ``sim.run`` span and ``sim.events``
        counter as the simulator backend — the span is keyed on the
        scheduling interface, so traces stay byte-identical across
        backends."""
        tctx = _trace_hooks.ACTIVE
        if tctx is None:
            return self._drain(until, max_events)
        with tctx.span("sim.run") as span:
            executed = self._drain(until, max_events)
            span.set(events=executed, now_ms=self.now)
        tctx.registry.inc("sim.events", executed)
        return executed

    def _drain(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            head = self._heap[0]
            if head._cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.when > until:
                break
            self.step()
            executed += 1
        if until is not None and (not self._heap or self._heap[0].when > until):
            self.now = max(self.now, until)
        return executed

    @property
    def pending(self) -> int:
        return sum(1 for h in self._heap if not h._cancelled)

    # ------------------------------------------------------------------
    # asyncio-compatible spellings
    # ------------------------------------------------------------------
    def time(self) -> float:
        """The loop's clock (``asyncio.AbstractEventLoop.time``)."""
        return self.now

    def call_soon(self, callback: Callable[..., None], *args: Any) -> TimerHandle:
        """Schedule ``callback(*args)`` at the current instant; it runs
        after everything already queued for this instant (FIFO)."""
        return self.call_at(self.now, callback, *args)

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        if args:
            return self.schedule(delay, lambda: callback(*args))
        return self.schedule(delay, callback)

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        if args:
            return self.schedule_at(when, lambda: callback(*args))
        return self.schedule_at(when, callback)


def eventloop_backend(topology) -> SchedulingBackend:
    """The ``"eventloop"`` backend: a fresh loop plus the shared
    transport fabric bound to it."""
    loop = EventLoop()
    return SchedulingBackend("eventloop", loop, Transport(loop, topology))


register_backend("eventloop", eventloop_backend)
