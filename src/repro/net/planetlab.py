"""Synthetic PlanetLab-like all-pairs RTT topology.

The paper measured the RTT between each pair of 227 PlanetLab hosts on
2004-08-12; those hosts "spread in North America, Europe, Asia, and
Australia".  That measurement file is not available, so this module
generates a *synthetic* all-pairs RTT matrix with the same structure:

* hosts belong to sites (a PlanetLab site hosts a couple of machines,
  separated by LAN latencies of a millisecond or two);
* sites belong to four continents with realistic intra-continent spreads;
* inter-continent base RTTs are of the same order as 2004 measurements
  (trans-Atlantic ~90 ms, trans-Pacific ~150 ms, Europe-Australia ~300 ms);
* the matrix is symmetric, zero-diagonal, and repaired to satisfy the
  triangle inequality (min-plus closure), as real shortest-path latencies
  approximately do.

Only the RTT matrix (and the derived one-way delay = RTT/2) is consumed by
the experiments, so this substitution preserves the behaviour the paper's
PlanetLab runs exercise: clustered latencies with same-site << same
continent << cross-continent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.sparse.csgraph import shortest_path

from .topology import Topology


@dataclass(frozen=True)
class Continent:
    """A latency region: a share of hosts and a geographic spread."""

    name: str
    weight: float          # fraction of hosts
    center: Tuple[float, float]  # position in "RTT space" (ms)
    radius: float          # intra-continent geographic spread (ms of RTT)


# Continent layout.  Positions are in a 2-D space where Euclidean distance
# approximates inter-site RTT in milliseconds; the layout gives
# NA-EU ~95 ms, NA-Asia ~155 ms, EU-Asia ~245 ms, Asia-AU ~125 ms,
# consistent with 2004-era PlanetLab medians.
PLANETLAB_CONTINENTS = (
    Continent("north-america", 0.55, (0.0, 0.0), 35.0),
    Continent("europe", 0.25, (95.0, 0.0), 22.0),
    Continent("asia", 0.14, (-155.0, 20.0), 35.0),
    Continent("australia", 0.06, (-180.0, 140.0), 15.0),
)

#: Number of PlanetLab hosts measured in the paper.
PAPER_NUM_HOSTS = 227


class PlanetLabTopology(Topology):
    """Synthetic PlanetLab: an all-pairs host RTT matrix, no router graph.

    Link-stress accounting is unavailable here; the paper accordingly runs
    its bandwidth experiments (Fig. 13) on the GT-ITM topology only.
    """

    def __init__(
        self,
        num_hosts: int = PAPER_NUM_HOSTS,
        continents: Tuple[Continent, ...] = PLANETLAB_CONTINENTS,
        hosts_per_site: float = 2.5,
        seed: int = 0,
    ):
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        rng = np.random.default_rng(seed)
        self._num_hosts = num_hosts

        # --- place sites ------------------------------------------------
        num_sites = max(1, int(round(num_hosts / hosts_per_site)))
        weights = np.array([c.weight for c in continents], dtype=float)
        weights = weights / weights.sum()
        site_continent = rng.choice(len(continents), size=num_sites, p=weights)
        site_pos = np.empty((num_sites, 2), dtype=float)
        for s, c_idx in enumerate(site_continent):
            c = continents[c_idx]
            angle = rng.uniform(0.0, 2.0 * np.pi)
            # sqrt for uniform density over the disc
            dist = c.radius * np.sqrt(rng.uniform())
            site_pos[s] = (
                c.center[0] + dist * np.cos(angle),
                c.center[1] + dist * np.sin(angle),
            )

        # --- site-level RTT matrix: distance plus lognormal jitter -------
        diff = site_pos[:, None, :] - site_pos[None, :, :]
        site_rtt = np.sqrt((diff ** 2).sum(axis=2))
        jitter = rng.lognormal(mean=0.0, sigma=0.12, size=site_rtt.shape)
        jitter = (jitter + jitter.T) / 2.0  # keep symmetry
        site_rtt = site_rtt * jitter
        # A routed path always has some minimum latency between distinct
        # sites (last-mile + metro hops).
        off_diag = ~np.eye(num_sites, dtype=bool)
        site_rtt[off_diag] = np.maximum(site_rtt[off_diag], 4.0)
        np.fill_diagonal(site_rtt, 0.0)
        # Min-plus closure: real inter-host latencies approximately obey the
        # triangle inequality because packets can route via the better path.
        site_rtt = shortest_path(site_rtt, method="FW", directed=False)

        # --- assign hosts to sites ---------------------------------------
        self._host_site = rng.integers(0, num_sites, size=num_hosts)
        # Every site used at least once when possible, so continents are
        # populated proportionally to their weights.
        if num_hosts >= num_sites:
            self._host_site[:num_sites] = np.arange(num_sites)
            rng.shuffle(self._host_site)
        self._site_continent = site_continent
        self._site_rtt = site_rtt

        # --- access links and LAN latencies ------------------------------
        # Host <-> gateway-router RTT (the h(u, gw_u) of Section 3.1.2).
        self._access = rng.lognormal(mean=0.0, sigma=0.5, size=num_hosts)
        self._access = np.clip(self._access, 0.2, 5.0)
        # Same-site pairs still differ by a LAN RTT of a millisecond or so.
        self._lan_rtt = rng.uniform(0.3, 1.5, size=num_hosts)

    # ------------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return self._num_hosts

    def host_continent(self, host: int) -> str:
        """Continent name for a host (useful in tests of topology-aware ID
        assignment)."""
        c_idx = self._site_continent[self._host_site[host]]
        return PLANETLAB_CONTINENTS[c_idx].name

    def host_site(self, host: int) -> int:
        return int(self._host_site[host])

    def access_rtt(self, host: int) -> float:
        return float(self._access[host])

    def rtt(self, a: int, b: int) -> float:
        rows = self._rtt_rows
        if rows is not None:
            return rows[a][b]
        if a == b:
            return 0.0
        sa, sb = self._host_site[a], self._host_site[b]
        if sa == sb:
            core = float(self._lan_rtt[a] + self._lan_rtt[b]) / 2.0
        else:
            core = float(self._site_rtt[sa, sb])
        return core + self.access_rtt(a) + self.access_rtt(b)

    def _build_rtt_matrix(self) -> np.ndarray:
        """Vectorized dense host RTT matrix; entries match the scalar
        :meth:`rtt` path exactly (same values, same operation order)."""
        sites = self._host_site
        core = self._site_rtt[np.ix_(sites, sites)]
        same_site = sites[:, None] == sites[None, :]
        lan = (self._lan_rtt[:, None] + self._lan_rtt[None, :]) / 2.0
        core = np.where(same_site, lan, core)
        m = (core + self._access[:, None]) + self._access[None, :]
        np.fill_diagonal(m, 0.0)
        return m

    def rtt_matrix(self) -> np.ndarray:
        """Dense host-level RTT matrix (shared read-only cache)."""
        return self.ensure_rtt_matrix()


class MatrixTopology(Topology):
    """A topology defined directly by an RTT matrix.

    Lets users of the library plug in *real* measurement files (e.g. an
    actual PlanetLab all-pairs dataset) in place of the synthetic model.
    """

    def __init__(self, rtt_matrix: np.ndarray, access_rtts: List[float] = None):
        matrix = np.asarray(rtt_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("rtt_matrix must be square")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("rtt_matrix must be symmetric")
        if np.any(np.diag(matrix) != 0):
            raise ValueError("rtt_matrix diagonal must be zero")
        if np.any(matrix < 0):
            raise ValueError("rtt_matrix must be non-negative")
        self._matrix = matrix
        n = matrix.shape[0]
        if access_rtts is None:
            self._access = np.ones(n)
        else:
            if len(access_rtts) != n:
                raise ValueError("access_rtts length mismatch")
            self._access = np.asarray(access_rtts, dtype=float)

    @property
    def num_hosts(self) -> int:
        return self._matrix.shape[0]

    def rtt(self, a: int, b: int) -> float:
        rows = self._rtt_rows
        if rows is not None:
            return rows[a][b]
        return float(self._matrix[a, b])

    def _build_rtt_matrix(self) -> np.ndarray:
        return self._matrix

    def access_rtt(self, host: int) -> float:
        return float(self._access[host])
