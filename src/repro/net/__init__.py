"""Network substrates: topology interface, routing, the two topology
families the paper evaluates on (GT-ITM transit-stub and PlanetLab), and
the scheduling seam (:mod:`repro.net.scheduling`) with its standalone
event-loop backend (:mod:`repro.net.eventloop`)."""

from .topology import Topology, validate_rtt_matrix
from .synthetic import SyntheticRttTopology
from .routing import RouterGraph, LinkStressCounter
from .gtitm import TransitStubTopology, TransitStubParams
from .planetlab import PlanetLabTopology, MatrixTopology, PAPER_NUM_HOSTS
from .gnp import GnpEstimatedTopology, GnpModel, fit_gnp
from .scheduling import (
    MessageStats,
    ScheduledEvent,
    Scheduler,
    SchedulingBackend,
    Transport,
    TransportNode,
    available_backends,
    create_backend,
    register_backend,
)
from .eventloop import EventLoop, TimerHandle, eventloop_backend

__all__ = [
    "GnpEstimatedTopology",
    "GnpModel",
    "fit_gnp",
    "SyntheticRttTopology",
    "Topology",
    "validate_rtt_matrix",
    "RouterGraph",
    "LinkStressCounter",
    "TransitStubTopology",
    "TransitStubParams",
    "PlanetLabTopology",
    "MatrixTopology",
    "PAPER_NUM_HOSTS",
    "MessageStats",
    "ScheduledEvent",
    "Scheduler",
    "SchedulingBackend",
    "Transport",
    "TransportNode",
    "available_backends",
    "create_backend",
    "register_backend",
    "EventLoop",
    "TimerHandle",
    "eventloop_backend",
]
