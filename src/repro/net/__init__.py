"""Network substrates: topology interface, routing, and the two topology
families the paper evaluates on (GT-ITM transit-stub and PlanetLab)."""

from .topology import Topology, validate_rtt_matrix
from .routing import RouterGraph, LinkStressCounter
from .gtitm import TransitStubTopology, TransitStubParams
from .planetlab import PlanetLabTopology, MatrixTopology, PAPER_NUM_HOSTS
from .gnp import GnpEstimatedTopology, GnpModel, fit_gnp

__all__ = [
    "GnpEstimatedTopology",
    "GnpModel",
    "fit_gnp",
    "Topology",
    "validate_rtt_matrix",
    "RouterGraph",
    "LinkStressCounter",
    "TransitStubTopology",
    "TransitStubParams",
    "PlanetLabTopology",
    "MatrixTopology",
    "PAPER_NUM_HOSTS",
]
