"""Shortest-path routing over a router graph.

GT-ITM style topologies route messages over physical links; we need both
host-to-host delays and the exact link sequence of every routed path so the
Fig. 13 experiments can count encryptions per *network link*.  Shortest
paths are computed with scipy's Dijkstra; predecessor matrices are cached
per source router so repeated path reconstructions are cheap.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra


class RouterGraph:
    """An undirected weighted router graph with link identities.

    ``edges`` are ``(u, v, two_way_delay_ms)`` triples.  Link weights used
    for routing are one-way delays (half of the stored two-way propagation
    delay), matching the paper's convention that one-way delay is half of
    RTT.
    """

    def __init__(self, num_routers: int, edges: Sequence[Tuple[int, int, float]]):
        if num_routers <= 0:
            raise ValueError("router graph needs at least one router")
        self.num_routers = num_routers
        self._link_ids: Dict[Tuple[int, int], int] = {}
        us: List[int] = []
        vs: List[int] = []
        ws: List[float] = []
        self._two_way: List[float] = []
        for u, v, two_way in edges:
            if not (0 <= u < num_routers and 0 <= v < num_routers):
                raise ValueError(f"edge ({u},{v}) outside router range")
            if u == v:
                raise ValueError(f"self-loop at router {u}")
            key = (min(u, v), max(u, v))
            if key in self._link_ids:
                raise ValueError(f"duplicate link {key}")
            self._link_ids[key] = len(self._two_way)
            self._two_way.append(float(two_way))
            one_way = float(two_way) / 2.0
            us.extend((u, v))
            vs.extend((v, u))
            ws.extend((one_way, one_way))
        self._matrix = csr_matrix(
            (ws, (us, vs)), shape=(num_routers, num_routers)
        )
        # Per-source caches filled lazily by _ensure_source().
        self._dist_cache: Dict[int, np.ndarray] = {}
        self._pred_cache: Dict[int, np.ndarray] = {}

    @property
    def num_links(self) -> int:
        return len(self._two_way)

    def link_id(self, u: int, v: int) -> int:
        """Identity of the (undirected) link between adjacent routers."""
        return self._link_ids[(min(u, v), max(u, v))]

    def link_two_way_delay(self, link: int) -> float:
        return self._two_way[link]

    def is_connected(self) -> bool:
        """True iff every router is reachable from router 0."""
        dist = self._ensure_source(0)[0]
        return bool(np.all(np.isfinite(dist)))

    # ------------------------------------------------------------------
    def _ensure_source(self, source: int) -> Tuple[np.ndarray, np.ndarray]:
        if source not in self._dist_cache:
            dist, pred = dijkstra(
                self._matrix,
                directed=False,
                indices=source,
                return_predecessors=True,
            )
            self._dist_cache[source] = dist
            self._pred_cache[source] = pred
        return self._dist_cache[source], self._pred_cache[source]

    def one_way_delay(self, src: int, dst: int) -> float:
        """One-way shortest-path delay between two routers."""
        dist = self._ensure_source(src)[0]
        value = float(dist[dst])
        if not np.isfinite(value):
            raise ValueError(f"router {dst} unreachable from {src}")
        return value

    def path_routers(self, src: int, dst: int) -> List[int]:
        """Router sequence of the shortest path from ``src`` to ``dst``."""
        if src == dst:
            return [src]
        pred = self._ensure_source(src)[1]
        path = [dst]
        node = dst
        while node != src:
            node = int(pred[node])
            if node < 0:
                raise ValueError(f"router {dst} unreachable from {src}")
            path.append(node)
        path.reverse()
        return path

    def path_links(self, src: int, dst: int) -> List[int]:
        """Link-ID sequence of the shortest path from ``src`` to ``dst``."""
        routers = self.path_routers(src, dst)
        return [
            self.link_id(a, b) for a, b in zip(routers, routers[1:])
        ]

    def delays_from(self, source: int) -> np.ndarray:
        """Vector of one-way delays from ``source`` to every router."""
        return self._ensure_source(source)[0]

    def delays_from_many(self, sources: Sequence[int]) -> np.ndarray:
        """One-way delay rows for many sources, shape
        ``(len(sources), num_routers)``.

        Missing sources are computed with a single batched scipy Dijkstra
        call instead of one call per source; results are cached per source
        exactly like :meth:`delays_from`, and row values are identical to
        the per-source path."""
        missing = sorted(
            {int(s) for s in sources if int(s) not in self._dist_cache}
        )
        if missing:
            dist, pred = dijkstra(
                self._matrix,
                directed=False,
                indices=missing,
                return_predecessors=True,
            )
            for k, s in enumerate(missing):
                self._dist_cache[s] = dist[k]
                self._pred_cache[s] = pred[k]
        return np.vstack([self._dist_cache[int(s)] for s in sources])


class LinkStressCounter:
    """Accumulates per-link message counts during a multicast session.

    *Stress of a physical link* is the number of identical copies of a
    message carried by the link (Section 2.3).  For Fig. 13 we accumulate
    *encryptions* per link instead of message copies; the same counter
    serves both by varying ``amount``.
    """

    def __init__(self, num_links: int):
        self.counts = np.zeros(num_links, dtype=np.float64)

    def add_path(self, links: Sequence[int], amount: float = 1.0) -> None:
        for link in links:
            self.counts[link] += amount

    def nonzero(self) -> np.ndarray:
        """Counts of links that carried at least one unit."""
        return self.counts[self.counts > 0]

    def max(self) -> float:
        return float(self.counts.max()) if len(self.counts) else 0.0
