"""On-demand RTT synthesis for large-N worlds (docs/PERFORMANCE.md,
"Scale ladder").

A :class:`SyntheticRttTopology` places every host at a seeded planar
coordinate and *defines* ``rtt(a, b) = 2 * euclidean_distance(a, b)``.
Nothing is precomputed: any pair's RTT is synthesized on demand from the
two coordinates, so a million-host topology costs two float64 columns
(~16 MB) instead of an O(N²) matrix (~8 TB).

Bitwise discipline.  The scalar path computes

    ``2.0 * sqrt(dx*dx + dy*dy)``

and every vectorized surface (:meth:`rtt_many`, :meth:`rtt_to_many`,
:meth:`_build_rtt_matrix`) evaluates the *same* expression with the same
operand order through numpy.  IEEE 754 guarantees ``*``, ``+`` and a
correctly-rounded ``sqrt`` produce identical bits for identical inputs,
and multiplying by 2.0 is exact, so the lazily-synthesized values are
bit-for-bit the dense matrix's values at every size where the dense
matrix can still be built — ``tests/test_perf_equivalence.py`` holds
that property under hypothesis.  (``math.hypot`` is deliberately *not*
used: its extra-precision algorithm differs from ``np.sqrt(dx²+dy²)``
by up to 1 ulp, which would break the equivalence.)

The one-way delay (``rtt / 2``) is then exactly the Euclidean distance —
halving the doubled distance is lossless in binary floating point — so
streaming fan-out kernels can use the distance directly.

Dense guard.  ``max_dense_hosts`` (default 4096) caps
:meth:`ensure_rtt_matrix`: above it the call raises instead of silently
materializing gigabytes, which is what keeps the 1M rung honest about
never holding an all-pairs matrix.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .topology import Topology

#: Default ceiling on dense materialization: a 4096² float64 matrix is
#: ~134 MB, the largest size the equivalence tests still exercise.
DEFAULT_MAX_DENSE_HOSTS = 4096


class SyntheticRttTopology(Topology):
    """Hosts in a plane; ``rtt(a, b) = 2 * distance(a, b)``, synthesized
    per call — symmetric with a zero diagonal by construction."""

    def __init__(
        self,
        coords: Sequence[Sequence[float]],
        access: float = 1.0,
        max_dense_hosts: Optional[int] = DEFAULT_MAX_DENSE_HOSTS,
    ):
        arr = np.ascontiguousarray(coords, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"coords must be (n, 2), got {arr.shape}")
        self._coords = arr
        # Plain-float twin for the scalar path: indexing a list of
        # [x, y] pairs returns Python floats, keeping per-call overhead
        # off the ndarray boxing path.  float64 scalar arithmetic is
        # bitwise-identical either way.
        self._coord_rows = arr.tolist()
        self._access = float(access)
        self.max_dense_hosts = max_dense_hosts

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        num_hosts: int,
        seed: int,
        span: float = 100.0,
        access: float = 1.0,
        max_dense_hosts: Optional[int] = DEFAULT_MAX_DENSE_HOSTS,
    ) -> "SyntheticRttTopology":
        """A topology whose coordinates are a pure function of ``seed``:
        ``default_rng(seed).uniform(0, span, size=(num_hosts, 2))``."""
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0.0, span, size=(num_hosts, 2))
        return cls(coords, access=access, max_dense_hosts=max_dense_hosts)

    # ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """The (num_hosts, 2) coordinate array — treat as read-only."""
        return self._coords

    @property
    def num_hosts(self) -> int:
        return len(self._coord_rows)

    def rtt(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        xa, ya = self._coord_rows[a]
        xb, yb = self._coord_rows[b]
        dx = xa - xb
        dy = ya - yb
        return 2.0 * math.sqrt(dx * dx + dy * dy)

    def access_rtt(self, host: int) -> float:
        return self._access

    # ------------------------------------------------------------------
    # Vectorized surfaces — same expression, same operand order.
    # ------------------------------------------------------------------
    def rtt_many(self, src: int, hosts: Sequence[int]) -> np.ndarray:
        m = self._rtt_dense
        idx = np.asarray(hosts, dtype=np.intp)
        if m is not None:
            return m[src, idx]
        p = self._coords[idx]
        s = self._coords[src]
        dx = s[0] - p[:, 0]
        dy = s[1] - p[:, 1]
        out = 2.0 * np.sqrt(dx * dx + dy * dy)
        out[idx == src] = 0.0
        return out

    def rtt_to_many(self, dst: int, hosts: Sequence[int]) -> np.ndarray:
        m = self._rtt_dense
        idx = np.asarray(hosts, dtype=np.intp)
        if m is not None:
            return m[idx, dst]
        p = self._coords[idx]
        d = self._coords[dst]
        dx = p[:, 0] - d[0]
        dy = p[:, 1] - d[1]
        out = 2.0 * np.sqrt(dx * dx + dy * dy)
        out[idx == dst] = 0.0
        return out

    def _build_rtt_matrix(self) -> np.ndarray:
        diff = self._coords[:, None, :] - self._coords[None, :, :]
        sq = diff * diff
        m = 2.0 * np.sqrt(sq[:, :, 0] + sq[:, :, 1])
        np.fill_diagonal(m, 0.0)
        return m

    def ensure_rtt_matrix(self) -> np.ndarray:
        limit = self.max_dense_hosts
        if self._rtt_dense is None and limit is not None and self.num_hosts > limit:
            raise RuntimeError(
                f"refusing to materialize a dense {self.num_hosts}x"
                f"{self.num_hosts} RTT matrix (max_dense_hosts="
                f"{limit}); large-N callers must stay on the on-demand "
                f"synthesis path"
            )
        return super().ensure_rtt_matrix()
