"""Span records: the building block of a structured trace.

A span is one named unit of work with a parent (forming a tree), an
integer ID assigned in creation order, and a flat attribute dict.  Spans
carry **no wall-clock timestamps**: every field is a deterministic
function of the traced scenario (simulated time, seeds, counts), which is
what makes a normalized trace a byte-stable regression artifact — the
same seed produces the same bytes, run after run and process after
process (see ``tests/test_trace_golden.py``).

This module deliberately imports nothing from the rest of the package so
the hot modules (``repro.core.tmesh``, ``repro.sim.engine``) can import
the trace hook layer without dragging protocol code along.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

#: Serialization format version, bumped when the normalized byte layout
#: changes (golden fixtures must be regenerated then).
TRACE_VERSION = 1

#: The root sentinel: spans with this parent are top-level.
ROOT = -1


@dataclass(slots=True)
class Span:
    """One node of the span tree.

    ``span_id`` values are assigned sequentially by the owning context,
    so creation order and ID order coincide; ``parent`` is another span's
    ID or :data:`ROOT`.  ``attrs`` values are plain scalars (str, int,
    float, bool) — anything else is stringified at serialization time.

    Slotted: traces allocate one of these per T-mesh receipt, so the
    per-instance dict matters at the paper's 1024-member scale
    (``benchmarks/test_trace_overhead.py``).
    """

    span_id: int
    parent: int
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def as_record(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "attrs": {k: _scalar(v) for k, v in self.attrs.items()},
        }


def _scalar(value: Any) -> Any:
    """Clamp an attribute value to a JSON-stable scalar."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def dumps(record: Dict[str, Any]) -> str:
    """The one serialization everybody uses: sorted keys, no whitespace,
    ASCII-safe escapes — byte-stable for equal inputs."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def well_nested_problems(spans: Iterable[Span]) -> List[str]:
    """Structural defects of a span list: IDs must be sequential from 0,
    every parent must be an earlier span (or :data:`ROOT`), so the
    relation is acyclic and the tree well-nested by construction.
    Returns human-readable problem strings (empty = well-formed)."""
    problems: List[str] = []
    seen: Dict[int, Span] = {}
    for index, span in enumerate(spans):
        if span.span_id != index:
            problems.append(
                f"span #{index} has id {span.span_id} (ids must be "
                "sequential in creation order)"
            )
        if span.parent != ROOT and span.parent not in seen:
            problems.append(
                f"span {span.span_id} ({span.name}) has parent "
                f"{span.parent} which is not an earlier span"
            )
        if span.parent == span.span_id:
            problems.append(f"span {span.span_id} is its own parent")
        seen[span.span_id] = span
    return problems


def children_index(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    """Parent ID -> children, in creation order (:data:`ROOT` for tops)."""
    index: Dict[int, List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent, []).append(span)
    return index


def span_depths(spans: List[Span]) -> Dict[int, int]:
    """Span ID -> depth (top-level spans are depth 0).  Relies on parents
    preceding children, which :func:`well_nested_problems` enforces."""
    depths: Dict[int, int] = {}
    for span in spans:
        depths[span.span_id] = (
            0 if span.parent == ROOT else depths[span.parent] + 1
        )
    return depths


def freeze_spans(spans: List[Span]) -> Tuple[Tuple[int, int, str, Tuple[Tuple[str, Any], ...]], ...]:
    """A picklable, immutable snapshot of a span list (used to ship a
    forked worker's trace back to the parent process)."""
    return tuple(
        (s.span_id, s.parent, s.name, tuple(sorted(s.attrs.items())))
        for s in spans
    )


def thaw_spans(frozen) -> List[Span]:
    return [
        Span(span_id, parent, name, dict(attrs))
        for span_id, parent, name, attrs in frozen
    ]
