"""Structured tracing & metrics for the rekeying reproduction.

The package has three layers:

* :mod:`repro.trace.spans` — deterministic span records and tree helpers;
* :mod:`repro.trace.registry` — counters / gauges / histograms with
  Prometheus-text and JSONL export (wired through
  :mod:`repro.metrics.export`);
* :mod:`repro.trace.hooks` — the opt-in runtime context the hot paths
  consult (``with tracing(): ...`` or ``--trace`` on the CLI), following
  the zero-overhead-when-off slot discipline of :mod:`repro.verify.hooks`.

:mod:`repro.trace.golden` defines the canonical fixed-seed workloads
whose normalized traces are committed as regression artifacts under
``tests/fixtures/`` (see ``docs/OBSERVABILITY.md``).

Only span/registry/hook layers are imported eagerly; the golden module
imports experiment drivers and resolves lazily.
"""

from .hooks import TraceContext, active, install, tracing, uninstall
from .registry import DEFAULT_BUCKETS, MetricsRegistry
from .spans import (
    ROOT,
    TRACE_VERSION,
    Span,
    children_index,
    span_depths,
    well_nested_problems,
)

_LAZY = {
    "GOLDEN_TRACES": "golden",
    "compare_traces": "golden",
    "fig7_trace": "golden",
    "rekey256_trace": "golden",
}

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "ROOT",
    "Span",
    "TRACE_VERSION",
    "TraceContext",
    "active",
    "children_index",
    "install",
    "span_depths",
    "tracing",
    "uninstall",
    "well_nested_problems",
    *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value
