"""Canonical fixed-seed golden-trace workloads.

A golden trace is a normalized trace (see :meth:`repro.trace.hooks.
TraceContext.render`) of a frozen workload, committed under
``tests/fixtures/`` and compared **byte-exact** by
``tests/test_trace_golden.py``.  Because every traced quantity is a
deterministic function of the scenario seed, any byte difference means
observable protocol behaviour changed — the trace is a regression
artifact, exactly like the fixed-seed oracle suite of
``tools/check_invariants.py``.

Workloads:

* :func:`rekey256_trace` — a 256-member GT-ITM group serving one plain
  and one :class:`~repro.core.tmesh.SessionPlan` rekey multicast, plus
  the batch rekey of its modified key tree (covers the ``tmesh`` and
  ``keytree`` hooks).
* :func:`fig7_trace` — the Fig. 7 rekey-latency workload (GT-ITM, T-mesh
  vs NICE) through :func:`~repro.experiments.latency_experiments.
  run_latency_experiment`, replications distributed by a
  :class:`~repro.experiments.parallel.ParallelRunner` (covers the
  per-worker trace merge; byte-identical for any process count).

Regenerate the fixtures after an *intentional* behaviour change::

    PYTHONPATH=src python -m repro.trace.golden --write tests/fixtures
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .hooks import tracing

#: Frozen workload parameters — changing these invalidates the fixtures.
REKEY_USERS = 256
FIG7_USERS = 128
FIG7_RUNS = 2
GOLDEN_SEED = 7


def rekey256_trace(seed: int = GOLDEN_SEED, users: int = REKEY_USERS) -> str:
    """Normalized trace of the fixed-seed 256-member rekey workload."""
    from ..core.tmesh import plan_session, rekey_session
    from ..experiments.common import build_group, build_topology
    from ..keytree.modified_tree import ModifiedKeyTree

    with tracing(seed=seed, label=f"golden-rekey{users}") as ctx:
        topology = build_topology("gtitm", users, seed=seed)
        group = build_group(topology, users, seed=seed)
        rekey_session(group.server_table, group.tables, topology)
        plan = plan_session(group.server_table, group.tables)
        rekey_session(group.server_table, group.tables, topology, plan=plan)
        tree = ModifiedKeyTree(group.scheme)
        for uid in sorted(group.records):
            tree.request_join(uid)
        tree.process_batch()
    return ctx.render()


def fig7_trace(
    seed: int = GOLDEN_SEED,
    users: int = FIG7_USERS,
    runs: int = FIG7_RUNS,
    processes: Optional[int] = 1,
) -> str:
    """Normalized trace of the Fig. 7 rekey-latency workload.

    ``processes`` selects serial (1) or forked execution; the acceptance
    contract is that the returned text is byte-identical either way."""
    from ..experiments.latency_experiments import run_latency_experiment
    from ..experiments.parallel import ParallelRunner

    with tracing(seed=seed, label="golden-fig7") as ctx:
        run_latency_experiment(
            "Fig 7 (traced)", "gtitm", users, mode="rekey",
            runs=runs, seed=seed, runner=ParallelRunner(processes=processes),
        )
    return ctx.render()


#: fixture file name -> generator of its normalized text.
GOLDEN_TRACES: Dict[str, Callable[[], str]] = {
    "trace_rekey256.jsonl": rekey256_trace,
    "trace_fig7.jsonl": fig7_trace,
}


def compare_traces(expected: str, actual: str) -> List[str]:
    """Byte-exact comparison of two normalized traces.

    Returns human-readable differences (empty list = identical).  The
    first differing line is named so a golden mismatch points straight at
    the span or metric that moved."""
    if expected == actual:
        return []
    problems: List[str] = []
    expected_lines = expected.splitlines()
    actual_lines = actual.splitlines()
    if len(expected_lines) != len(actual_lines):
        problems.append(
            f"line count differs: expected {len(expected_lines)}, "
            f"got {len(actual_lines)}"
        )
    for index, (want, got) in enumerate(zip(expected_lines, actual_lines)):
        if want != got:
            problems.append(
                f"first difference at line {index + 1}:\n"
                f"  expected: {want}\n"
                f"  actual:   {got}"
            )
            break
    else:
        if not problems:
            # Same common prefix but different trailing bytes (e.g. a
            # missing final newline).
            problems.append("traces differ only in trailing bytes")
    return problems


def main(argv=None) -> int:
    """Regenerate the committed golden fixtures."""
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", metavar="DIR", required=True,
        help="directory to write the golden fixtures into",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.write)
    out.mkdir(parents=True, exist_ok=True)
    for name, generate in GOLDEN_TRACES.items():
        path = out / name
        path.write_text(generate(), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
