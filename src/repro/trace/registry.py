"""Counters, gauges, and histograms with deterministic export.

The registry is the metrics half of :mod:`repro.trace`: instrumented
call sites bump counters (messages forwarded, duplicate suppressions,
repair retries, keys encrypted), set gauges, and feed histograms, and the
exporters in :mod:`repro.metrics.export` render the result either as
Prometheus text exposition format or as JSONL rows appended to the trace.

Determinism contract: rendering sorts by ``(name, labels)`` and never
touches wall-clock time, so two runs of the same seeded scenario export
byte-identical metric blocks.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .spans import dumps

#: Default histogram bucket upper bounds (ms-ish magnitudes; the last
#: implicit bucket is +Inf).  Frozen so committed golden traces and the
#: Prometheus exposition stay stable.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prom_name(name: str) -> str:
    """Prometheus metric names allow ``[a-zA-Z_:][a-zA-Z0-9_:]*``; dotted
    registry names map dots (and anything else) to underscores."""
    sanitized = "".join(
        c if c.isalnum() or c in "_:" else "_" for c in name
    )
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in labels)
    return "{" + body + "}"


@dataclass
class _Histogram:
    buckets: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket

    def observe(self, value: float) -> None:
        # bisect_left finds the first bound >= value, i.e. the smallest
        # bucket with value <= bound; past-the-end is the +Inf slot.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """A process-local metrics store with snapshot/merge support.

    Counters accumulate, gauges keep the last value set, histograms keep
    fixed-bucket counts plus sum and count.  All three are keyed by
    ``(name, sorted labels)``.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, LabelKey], _Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges[(name, _label_key(labels))] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = _Histogram(tuple(buckets) if buckets else DEFAULT_BUCKETS)
            self._histograms[key] = hist
        elif buckets is not None and tuple(buckets) != hist.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{hist.buckets}, got {tuple(buckets)}"
            )
        hist.observe(value)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> _Histogram:
        """The named histogram itself, created on first use — hot loops
        hoist this once and call ``observe`` on it directly, skipping the
        per-observation key construction."""
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = _Histogram(tuple(buckets) if buckets else DEFAULT_BUCKETS)
            self._histograms[key] = hist
        elif buckets is not None and tuple(buckets) != hist.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{hist.buckets}, got {tuple(buckets)}"
            )
        return hist

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get((name, _label_key(labels)), 0)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get((name, _label_key(labels)))

    def histogram_stats(self, name: str, **labels: Any) -> Optional[Dict[str, float]]:
        hist = self._histograms.get((name, _label_key(labels)))
        if hist is None:
            return None
        return {"count": hist.count, "sum": hist.total}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Snapshot / merge (crosses fork boundaries via pickle)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": tuple(
                (name, labels, value)
                for (name, labels), value in self._counters.items()
            ),
            "gauges": tuple(
                (name, labels, value)
                for (name, labels), value in self._gauges.items()
            ),
            "histograms": tuple(
                (name, labels, h.buckets, tuple(h.counts), h.total, h.count)
                for (name, labels), h in self._histograms.items()
            ),
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        for name, labels, value in snap["counters"]:
            key = (name, tuple(labels))
            self._counters[key] = self._counters.get(key, 0) + value
        for name, labels, value in snap["gauges"]:
            self._gauges[(name, tuple(labels))] = value
        for name, labels, buckets, counts, total, count in snap["histograms"]:
            key = (name, tuple(labels))
            hist = self._histograms.get(key)
            if hist is None:
                hist = _Histogram(tuple(buckets))
                self._histograms[key] = hist
            elif hist.buckets != tuple(buckets):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket mismatch"
                )
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.total += total
            hist.count += count

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def jsonl_lines(self) -> List[str]:
        """One deterministic JSON line per metric, sorted by kind, name,
        labels — the metric block of a normalized trace."""
        lines: List[str] = []
        for (name, labels), value in sorted(self._counters.items()):
            lines.append(dumps({
                "kind": "counter", "name": name,
                "labels": dict(labels), "value": value,
            }))
        for (name, labels), value in sorted(self._gauges.items()):
            lines.append(dumps({
                "kind": "gauge", "name": name,
                "labels": dict(labels), "value": value,
            }))
        for (name, labels), hist in sorted(self._histograms.items()):
            lines.append(dumps({
                "kind": "histogram", "name": name,
                "labels": dict(labels),
                "buckets": list(hist.buckets),
                "counts": list(hist.counts),
                "sum": hist.total,
                "count": hist.count,
            }))
        return lines

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format, grouped by metric family
        and sorted, ending with a newline (as the wire format requires)."""
        lines: List[str] = []
        families: Dict[str, List[str]] = {}

        for (name, labels), value in sorted(self._counters.items()):
            fam = _prom_name(name)
            families.setdefault(f"counter {fam}", []).append(
                f"{fam}{_prom_labels(labels)} {_prom_value(float(value))}"
            )
        for (name, labels), value in sorted(self._gauges.items()):
            fam = _prom_name(name)
            families.setdefault(f"gauge {fam}", []).append(
                f"{fam}{_prom_labels(labels)} {_prom_value(float(value))}"
            )
        for (name, labels), hist in sorted(self._histograms.items()):
            fam = _prom_name(name)
            rows = families.setdefault(f"histogram {fam}", [])
            cumulative = 0
            bounds = [repr(b) for b in hist.buckets] + ["+Inf"]
            for bound, bucket_count in zip(bounds, hist.counts):
                cumulative += bucket_count
                le = (("le", bound),) + tuple(labels)
                rows.append(
                    f"{fam}_bucket{_prom_labels(le)} {cumulative}"
                )
            rows.append(f"{fam}_sum{_prom_labels(labels)} {_prom_value(hist.total)}")
            rows.append(f"{fam}_count{_prom_labels(labels)} {hist.count}")

        for family in sorted(families):
            kind, fam = family.split(" ", 1)
            lines.append(f"# TYPE {fam} {kind}")
            lines.extend(families[family])
        return "\n".join(lines) + "\n" if lines else ""
