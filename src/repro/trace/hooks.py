"""Hook layer: opt-in structured tracing with zero overhead when off.

A single module-level slot, :data:`ACTIVE`, holds the installed
:class:`TraceContext` (or ``None``) — the exact discipline of
:mod:`repro.verify.hooks`.  Instrumented call sites —
:func:`repro.core.tmesh.run_multicast`, :class:`repro.core.tmesh.
SessionPlan`, :meth:`repro.alm.reliable.ReliableSession.multicast`,
:meth:`repro.keytree.modified_tree.ModifiedKeyTree.process_batch`,
the ``run()`` of every :class:`repro.net.scheduling.Scheduler` backend
(:meth:`repro.sim.engine.Simulator.run` and :meth:`repro.net.eventloop.
EventLoop.run` emit the same ``sim.run`` span — the hook is keyed on
the scheduling interface, not the simulator), :class:`repro.distributed.
harness.DistributedGroup`, and :meth:`repro.experiments.parallel.
ParallelRunner.map` — read the slot once per session/run/batch and do
nothing further when it is ``None``, so the bench lane pays one
attribute load per *session*, never per event
(``benchmarks/test_trace_overhead.py`` enforces this).

Typical use::

    from repro.trace import tracing

    with tracing(seed=7) as ctx:
        rekey_session(server_table, tables, topology)   # auto-traced
    print(ctx.summary())
    text = ctx.render()          # normalized JSONL, byte-stable per seed

or, for CLI surfaces, ``python -m repro --trace=run.jsonl fig 7``.

Determinism: span IDs are creation-order integers, every attribute is a
deterministic function of the scenario (simulated time, seeds, counts —
never wall clock), and :meth:`TraceContext.render` sorts everything that
is not inherently ordered.  Same seed => byte-identical normalized trace,
including across serial vs :class:`~repro.experiments.parallel.
ParallelRunner` execution (workers trace into fresh child contexts whose
payloads merge back in task order).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .registry import MetricsRegistry
from .spans import ROOT, TRACE_VERSION, Span, dumps, freeze_spans, thaw_spans

#: The installed context; hot paths read this directly.
ACTIVE: Optional["TraceContext"] = None

#: Histogram buckets for application-layer delay (ms).
DELAY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                 1000.0, 2000.0)


def active() -> Optional["TraceContext"]:
    """The installed :class:`TraceContext`, or ``None``."""
    return ACTIVE


def install(context: "TraceContext") -> "TraceContext":
    """Install a context; raises if one is already active."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a TraceContext is already installed")
    ACTIVE = context
    return context


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def tracing(**kwargs: Any) -> Iterator["TraceContext"]:
    """``with tracing(...):`` — install a fresh context for the duration
    of the block."""
    context = install(TraceContext(**kwargs))
    try:
        yield context
    finally:
        uninstall()


class TraceContext:
    """Collects spans and metrics from everything the hooks observe.

    ``seed`` tags the trace header (scenarios are deterministic functions
    of their seed, so the tag is the repro key); ``label`` names the
    captured workload; ``hops=False`` drops the per-receipt hop spans for
    very large sessions (counters still accumulate).
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        label: Optional[str] = None,
        hops: bool = True,
    ):
        self.seed = seed
        self.label = label
        self.hops = hops
        self.spans: List[Span] = []
        self.registry = MetricsRegistry()
        self._stack: List[int] = []
        # Summary tallies (not part of the normalized trace).
        self.sessions_traced = 0
        self.reliable_traced = 0
        self.batches_traced = 0
        self.intervals_traced = 0
        self.tasks_merged = 0
        # str(Id) builds a string per call; members recur across sessions
        # (and as upstreams within one), so memoize per context.
        self._id_strs: Dict[Any, str] = {}

    def _id_str(self, value: Any) -> str:
        cached = self._id_strs.get(value)
        if cached is None:
            cached = self._id_strs[value] = str(value)
        return cached

    # ------------------------------------------------------------------
    # Core span API
    # ------------------------------------------------------------------
    def _current(self) -> int:
        return self._stack[-1] if self._stack else ROOT

    def _new_span(self, name: str, parent: int, attrs: Dict[str, Any]) -> Span:
        span = Span(len(self.spans), parent, name, attrs)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span as a child of the innermost open span; everything
        recorded inside the block nests under it.  The yielded
        :class:`~repro.trace.spans.Span` accepts late attributes via
        :meth:`~repro.trace.spans.Span.set`."""
        span = self._new_span(name, self._current(), attrs)
        self._stack.append(span.span_id)
        try:
            yield span
        finally:
            self._stack.pop()

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration child span of the innermost open span."""
        return self._new_span(name, self._current(), attrs)

    # ------------------------------------------------------------------
    # Metrics API (delegates to the registry)
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        self.registry.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.registry.set_gauge(name, value, **labels)

    def observe_value(
        self, name: str, value: float, buckets=None, **labels: Any
    ) -> None:
        self.registry.observe(name, value, buckets=buckets, **labels)

    # ------------------------------------------------------------------
    # Observation points (called by the instrumented hot paths)
    # ------------------------------------------------------------------
    def observe_session(self, session, topology, planned: bool = False) -> None:
        """Record one finished T-mesh session: a ``tmesh.session`` span
        with one ``tmesh.hop`` child per receipt (the delivering copy —
        Theorem 1 says exactly one per member), plus the transport
        counters the paper's cost accounting needs."""
        index = self.sessions_traced
        self.sessions_traced += 1
        receipts = session.receipts
        edges = session.edges
        duplicates = sum(session.duplicate_copies.values())
        parent = self._new_span(
            "tmesh.session",
            self._current(),
            {
                "session": index,
                "sender": str(session.sender),
                "sender_host": session.sender_host,
                "members": len(receipts),
                "edges": len(edges),
                "duplicates": duplicates,
                "planned": planned,
            },
        )
        registry = self.registry
        if self.hops:
            # The per-receipt loop is the one genuinely hot trace path
            # (1024 iterations at the paper's headline size), so hoist
            # every lookup: bound append, pre-resolved histogram, and a
            # memoized Id -> str table.
            spans = self.spans
            append = spans.append
            pid = parent.span_id
            hist = registry.histogram("tmesh.app_delay_ms", DELAY_BUCKETS)
            id_str = self._id_str
            for receipt in receipts.values():
                append(
                    Span(
                        len(spans),
                        pid,
                        "tmesh.hop",
                        {
                            "member": id_str(receipt.member),
                            "host": receipt.host,
                            "level": receipt.forward_level,
                            "upstream": id_str(receipt.upstream),
                            "arrival_ms": receipt.arrival_time,
                        },
                    )
                )
                hist.observe(receipt.arrival_time)
        registry.inc("tmesh.sessions")
        registry.inc("tmesh.messages_forwarded", len(edges))
        registry.inc("tmesh.duplicate_copies", duplicates)
        registry.inc("tmesh.receipts", len(receipts))
        if planned:
            registry.inc("tmesh.planned_sessions")
        if topology is not None and topology.has_rtt_matrix():
            # The dense RTT cache from repro.perf served this session's
            # per-hop delays.
            registry.inc("perf.rtt_cache_sessions")

    def observe_reliable(self, outcome) -> None:
        """Fold one :class:`~repro.alm.reliable.ReliableOutcome`'s
        aggregated repair accounting into the counters."""
        self.reliable_traced += 1
        stats = outcome.stats
        registry = self.registry
        registry.inc("reliable.sessions")
        registry.inc("reliable.data_sent", stats.data_sent)
        registry.inc("reliable.data_delivered", stats.data_delivered)
        registry.inc("reliable.duplicates_suppressed", stats.duplicates_suppressed)
        registry.inc("reliable.nacks_sent", stats.nacks_sent)
        registry.inc("reliable.retransmissions", stats.retransmissions)
        registry.inc("reliable.source_repairs", stats.source_repairs)
        registry.inc("reliable.heartbeats_sent", stats.heartbeats_sent)
        registry.inc("reliable.gave_up", stats.gave_up)

    def observe_batch_rekey(self, interval: int, joins: Sequence, leaves: Sequence,
                            updated: Sequence, encryptions: Sequence) -> None:
        """Record one batch rekey: a ``keytree.batch`` span with one
        ``keytree.node_rekey`` child per updated k-node carrying its
        encryption fan-out."""
        self.batches_traced += 1
        parent = self._new_span(
            "keytree.batch",
            self._current(),
            {
                "interval": interval,
                "joins": len(joins),
                "leaves": len(leaves),
                "updated_nodes": len(updated),
                "encryptions": len(encryptions),
            },
        )
        per_node: Dict[Any, int] = {}
        for enc in encryptions:
            per_node[enc.new_key_id] = per_node.get(enc.new_key_id, 0) + 1
        pid = parent.span_id
        for node_id in updated:
            self._new_span(
                "keytree.node_rekey",
                pid,
                {
                    "node": str(node_id),
                    "depth": len(node_id),
                    "encryptions": per_node.get(node_id, 0),
                },
            )
        registry = self.registry
        registry.inc("keytree.batches")
        registry.inc("keytree.keys_encrypted", len(encryptions))
        registry.inc("keytree.joins", len(joins))
        registry.inc("keytree.leaves", len(leaves))
        registry.observe("keytree.batch_encryptions", len(encryptions))

    def observe_interval(self, update, now: float) -> None:
        """Record one distributed interval announcement."""
        self.intervals_traced += 1
        self.event(
            "distributed.interval",
            interval=update.interval,
            joins=len(update.joins),
            leaves=len(update.leaves),
            encryptions=len(update.encryptions),
            time_ms=now,
        )
        self.registry.inc("distributed.intervals")

    # ------------------------------------------------------------------
    # Parallel-worker merge (repro.experiments.parallel)
    # ------------------------------------------------------------------
    def worker_config(self) -> Dict[str, Any]:
        """Constructor kwargs for the per-task child contexts workers
        trace into."""
        return {"seed": self.seed, "label": self.label, "hops": self.hops}

    def freeze(self) -> Dict[str, Any]:
        """A picklable payload of everything recorded so far (spans,
        metrics, tallies) — what a forked worker ships back."""
        return {
            "spans": freeze_spans(self.spans),
            "metrics": self.registry.snapshot(),
            "tallies": (
                self.sessions_traced,
                self.reliable_traced,
                self.batches_traced,
                self.intervals_traced,
                self.tasks_merged,
            ),
        }

    def merge_payload(self, payload: Dict[str, Any], index: int) -> None:
        """Graft one task's frozen trace under a ``parallel.task`` span.

        Span IDs are renumbered by a constant offset so the merged trace
        depends only on task order — identical for serial and forked
        execution."""
        task_span = self._new_span(
            "parallel.task", self._current(), {"index": index}
        )
        base = len(self.spans)
        for span in thaw_spans(payload["spans"]):
            parent = (
                task_span.span_id if span.parent == ROOT else base + span.parent
            )
            self.spans.append(
                Span(base + span.span_id, parent, span.name, span.attrs)
            )
        self.registry.merge_snapshot(payload["metrics"])
        sessions, reliable, batches, intervals, tasks = payload["tallies"]
        self.sessions_traced += sessions
        self.reliable_traced += reliable
        self.batches_traced += batches
        self.intervals_traced += intervals
        self.tasks_merged += tasks + 1

    def merge_task_results(
        self, pairs: Sequence[Tuple[Any, Dict[str, Any]]]
    ) -> List[Any]:
        """Unwrap ``(result, frozen trace)`` pairs in task order, merging
        each trace; returns the bare results."""
        results: List[Any] = []
        for index, (result, payload) in enumerate(pairs):
            self.merge_payload(payload, index)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def normalized_lines(self) -> List[str]:
        """The canonical byte representation: a header line, every span
        in creation order, then the sorted metric block."""
        header = {
            "kind": "header",
            "version": TRACE_VERSION,
            "seed": self.seed,
            "label": self.label,
            "spans": len(self.spans),
        }
        lines = [dumps(header)]
        lines.extend(dumps(span.as_record()) for span in self.spans)
        lines.extend(self.registry.jsonl_lines())
        return lines

    def render(self) -> str:
        """The normalized trace as text (trailing newline included)."""
        return "\n".join(self.normalized_lines()) + "\n"

    def summary(self) -> str:
        return (
            f"traced {self.sessions_traced} session(s), "
            f"{self.reliable_traced} reliable run(s), "
            f"{self.batches_traced} key-tree batch(es), "
            f"{self.intervals_traced} interval(s), "
            f"{self.tasks_merged} parallel task(s): "
            f"{len(self.spans)} span(s), {len(self.registry)} metric(s)"
        )
