"""Command-line entry point.

Usage::

    python -m repro report [--out EXPERIMENTS.md]   regenerate all figures
    python -m repro fig 13                          one figure's rows
    python -m repro quickstart                      the secure-group demo

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``).
"""

from __future__ import annotations

import argparse
import sys

from .experiments.config import current_scale


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import main as report_main

    text = report_main()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    scale = current_scale()
    number = args.number
    if number in (6, 7, 8, 9, 10, 11):
        from .experiments.latency_experiments import run_latency_experiment

        kind = "planetlab" if number in (6, 9) else "gtitm"
        users = (
            scale.planetlab_users
            if kind == "planetlab"
            else (
                scale.gtitm_users_small
                if number in (7, 10)
                else scale.gtitm_users_large
            )
        )
        mode = "rekey" if number <= 8 else "data"
        cmp = run_latency_experiment(
            f"Fig {number}", kind, users, mode=mode,
            runs=max(1, scale.latency_runs // 2), seed=number,
        )
        print(cmp.render())
    elif number == 12:
        from .experiments.rekey_cost import default_grid, run_rekey_cost

        surface = run_rekey_cost(
            num_users=scale.gtitm_users_large,
            grid=default_grid(scale.gtitm_users_large, scale.rekey_cost_grid),
            runs=scale.rekey_cost_runs,
            seed=12,
        )
        print(surface.render())
    elif number == 13:
        from .experiments.bandwidth_experiment import run_bandwidth_experiment

        exp = run_bandwidth_experiment(
            num_users=scale.gtitm_users_large,
            churn=scale.bandwidth_churn,
            seed=13,
        )
        print(exp.render())
    elif number == 14:
        from .experiments.thresholds import run_threshold_sweep

        print(run_threshold_sweep(num_users=scale.planetlab_users, seed=14).render())
    else:
        print(f"unknown figure {number}; the paper has Figs. 6-14",
              file=sys.stderr)
        return 2
    return 0


def _cmd_quickstart(_args: argparse.Namespace) -> int:
    from .core.group import SecureGroup
    from .net import TransitStubParams, TransitStubTopology

    topology = TransitStubTopology(
        num_hosts=33,
        params=TransitStubParams(
            transit_domains=3, transit_per_domain=3,
            stubs_per_transit=2, stub_size=6,
        ),
        seed=7,
    )
    group = SecureGroup(topology, server_host=32, seed=7)
    members = [group.join(host) for host in range(8)]
    report = group.end_interval()
    print(f"{len(members)} members joined; rekey cost "
          f"{report.rekey_cost} encryptions; audit "
          f"{'OK' if not group.verify_member_keys() else 'FAILED'}")
    blob = members[0].seal(b"hello, group")
    print(f"member 1 decrypts: {members[1].open(blob)!r}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Efficient Group Rekeying Using "
        "Application-Layer Multicast' (ICDCS 2005)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run every session/group under the invariant checkers "
        "(docs/VERIFY.md); exits 3 with a structured report on violation",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="capture a structured trace of the command "
        "(docs/OBSERVABILITY.md); writes normalized JSONL to PATH, or "
        "prints a summary to stderr without one.  Flag goes before the "
        "subcommand: python -m repro --trace=out.jsonl fig 7",
    )
    parser.add_argument(
        "--compute",
        default=None,
        metavar="BACKEND",
        help="repro.compute backend for the protocol kernels "
        "(docs/PERFORMANCE.md): 'reference' or 'numpy'.  Flag goes before "
        "the subcommand: python -m repro --compute=numpy fig 7",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="run all figures, emit markdown")
    p_report.add_argument("--out", default=None, help="write to a file")
    p_report.set_defaults(fn=_cmd_report)

    p_fig = sub.add_parser("fig", help="regenerate one figure's rows")
    p_fig.add_argument("number", type=int, help="figure number (6-14)")
    p_fig.set_defaults(fn=_cmd_fig)

    p_quick = sub.add_parser("quickstart", help="tiny secure-group demo")
    p_quick.set_defaults(fn=_cmd_quickstart)

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Bare ``--trace`` would greedily eat the subcommand (nargs="?"), so
    # normalize it to the explicit empty form before parsing.
    argv = ["--trace=" if token == "--trace" else token for token in argv]
    args = parser.parse_args(argv)
    if args.compute is not None:
        from .compute import set_default_backend

        try:
            set_default_backend(args.compute)
        except KeyError as exc:
            parser.error(str(exc.args[0]) if exc.args else str(exc))
    if not args.verify and args.trace is None:
        return args.fn(args)

    from contextlib import ExitStack

    from .verify import InvariantViolation, verification

    with ExitStack() as stack:
        vctx = stack.enter_context(verification()) if args.verify else None
        tctx = None
        if args.trace is not None:
            from .trace import tracing

            tctx = stack.enter_context(tracing(label=f"cli:{args.command}"))
        try:
            code = args.fn(args)
        except InvariantViolation as violation:
            print(str(violation), file=sys.stderr)
            return 3
    if vctx is not None:
        print(f"[verify] {vctx.summary()}", file=sys.stderr)
    if tctx is not None:
        if args.trace:
            from .metrics.export import write_trace_jsonl

            write_trace_jsonl(args.trace, tctx)
            print(f"[trace] wrote {args.trace}", file=sys.stderr)
        else:
            print(f"[trace] {tctx.summary()}", file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
