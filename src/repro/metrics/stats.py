"""Statistical helpers for the paper's figures.

All the paper's distribution plots are *inverse cumulative distributions*:
values sorted in increasing order against the fraction of the population,
so a point ``(x, y)`` reads "an ``x`` fraction of users have a value less
than or equal to ``y``".  Fig. 6 additionally averages the per-rank values
across runs and reports a 95-percentile bar per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class InverseCdf:
    """An inverse cumulative distribution: fractions vs sorted values."""

    fractions: np.ndarray
    values: np.ndarray

    def value_at_fraction(self, fraction: float) -> float:
        """The value ``y`` such that a ``fraction`` of the population has a
        value <= ``y`` (e.g. ``value_at_fraction(0.78)`` for "78% of users
        have an RDP less than ...")."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        index = int(np.ceil(fraction * len(self.values))) - 1
        return float(self.values[index])

    def fraction_below(self, threshold: float) -> float:
        """The fraction of the population with value <= ``threshold``
        (e.g. "78% of users have an RDP less than 2")."""
        return float(np.mean(self.values <= threshold))


def inverse_cdf(values: Sequence[float]) -> InverseCdf:
    """Sort values ascending and pair them with population fractions."""
    sorted_values = np.sort(np.asarray(list(values), dtype=float))
    n = len(sorted_values)
    if n == 0:
        return InverseCdf(np.empty(0), np.empty(0))
    fractions = np.arange(1, n + 1, dtype=float) / n
    return InverseCdf(fractions, sorted_values)


@dataclass(frozen=True)
class RankedRuns:
    """Fig.-6-style multi-run statistics: users of each run ranked by a
    metric, then per-rank mean and 95th percentile across runs."""

    fractions: np.ndarray
    mean: np.ndarray
    p95: np.ndarray


def ranked_across_runs(runs: Sequence[Sequence[float]]) -> RankedRuns:
    """For each run, rank users in increasing metric order; for each rank
    compute the average and the 95-percentile across runs (the paper's
    procedure for Fig. 6)."""
    if not runs:
        raise ValueError("need at least one run")
    lengths = {len(run) for run in runs}
    if len(lengths) != 1:
        raise ValueError(f"runs have differing populations: {sorted(lengths)}")
    matrix = np.sort(np.asarray(runs, dtype=float), axis=1)
    n = matrix.shape[1]
    fractions = np.arange(1, n + 1, dtype=float) / n
    return RankedRuns(
        fractions=fractions,
        mean=matrix.mean(axis=0),
        p95=np.percentile(matrix, 95, axis=0),
    )


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Compact summary used by the experiment reports."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"count": 0}
    return {
        "count": int(arr.size),
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "mean": float(arr.mean()),
        "p90": float(np.percentile(arr, 90)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
