"""Latency metrics of Section 4.1: user stress, application-layer delay,
and relative delay penalty, for both T-mesh and baseline ALM sessions."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Union

import numpy as np

from ..alm.base import AlmSessionResult
from ..core.tmesh import SessionResult
from ..net.topology import Topology


@dataclass(frozen=True)
class LatencySample:
    """The three Section-4.1 metrics for every receiver of one session."""

    stress: np.ndarray
    app_delay: np.ndarray
    rdp: np.ndarray


def tmesh_latency(session: SessionResult, topology: Topology) -> LatencySample:
    """Metrics over all receivers of a T-mesh session.

    *User stress* counts forwarded messages per user (senders that are
    users are included in the stress population; the key server is not a
    user and is excluded, matching the paper)."""
    out_degree: Counter = Counter(e.src for e in session.edges)
    members = list(session.receipts)
    stress = [out_degree.get(m, 0) for m in members]
    delays = [session.receipts[m].arrival_time for m in members]
    rdps = [session.rdp(m, topology) for m in members]
    return LatencySample(
        np.asarray(stress, dtype=float),
        np.asarray(delays, dtype=float),
        np.asarray(rdps, dtype=float),
    )


def alm_latency(session: AlmSessionResult, topology: Topology) -> LatencySample:
    """Same metrics for a baseline (NICE / IP multicast) session."""
    out_degree: Counter = Counter(e.src_host for e in session.edges)
    hosts = list(session.arrival)
    stress = [out_degree.get(h, 0) for h in hosts]
    delays = [session.arrival[h] for h in hosts]
    rdps = [session.rdp(h, topology) for h in hosts]
    return LatencySample(
        np.asarray(stress, dtype=float),
        np.asarray(delays, dtype=float),
        np.asarray(rdps, dtype=float),
    )
