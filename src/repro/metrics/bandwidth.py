"""Rekey bandwidth-overhead accounting (Fig. 13).

Three quantities per rekey multicast, all measured in *encryptions*:
per-user received, per-user forwarded, and per-network-link carried.
Producers exist for every protocol family of Table 2:

* T-mesh with/without splitting — directly from
  :class:`~repro.core.splitting.SplitSessionResult`;
* NICE with the original key tree, with/without splitting — splitting over
  a generic ALM tree requires knowing which encryptions each *downstream
  user* needs, so the per-subtree needed-sets are computed from the
  delivery tree (the O(N) per-user state the paper's Section 2.6 points
  out T-mesh avoids);
* IP multicast — full message once per tree link.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from ..alm.base import AlmSessionResult
from ..core.splitting import SplitSessionResult
from ..net.routing import LinkStressCounter
from ..net.topology import Topology


@dataclass(frozen=True)
class BandwidthSample:
    """Per-user and per-link encryption counts for one rekey multicast."""

    received: np.ndarray
    forwarded: np.ndarray
    link_counts: Optional[np.ndarray]  # None on matrix-only topologies

    def most_loaded_user(self) -> float:
        loads = np.concatenate([self.received, self.forwarded])
        return float(loads.max()) if loads.size else 0.0


def tmesh_bandwidth(
    split_result: SplitSessionResult,
    topology: Optional[Topology] = None,
) -> BandwidthSample:
    """Package a T-mesh split/unsplit accounting into arrays."""
    members = sorted(split_result.received)
    received = np.asarray(
        [split_result.received[m] for m in members], dtype=float
    )
    forwarded = np.asarray(
        [split_result.forwarded.get(m, 0) for m in members], dtype=float
    )
    link_counts = None
    if topology is not None and topology.supports_link_stress():
        link_counts = split_result.link_counts(topology).counts
    return BandwidthSample(received, forwarded, link_counts)


def _downstream_needed(
    session: AlmSessionResult, needed: Mapping[int, Set[int]]
) -> Dict[int, Set[int]]:
    """For every host, the union of needed-encryption indices over the
    host itself and its delivery subtree."""
    children: Dict[int, List[int]] = {}
    for receiver, parent in session.upstream.items():
        children.setdefault(parent, []).append(receiver)

    below: Dict[int, Set[int]] = {}
    # Iterative post-order: children accumulate into parents.
    order: List[int] = []
    stack = [session.sender_host]
    while stack:
        host = stack.pop()
        order.append(host)
        stack.extend(children.get(host, ()))
    for host in reversed(order):
        result = set(needed.get(host, ()))
        for child in children.get(host, ()):
            result |= below[child]
        below[host] = result
    return below


def alm_split_bandwidth(
    session: AlmSessionResult,
    needed: Mapping[int, Set[int]],
    total_encryptions: int,
    topology: Optional[Topology] = None,
) -> BandwidthSample:
    """Rekey message splitting over a generic ALM (protocol P1').

    ``needed`` maps each receiver host to the indices of the encryptions
    it needs (from the original key tree).  Each hop carries exactly the
    encryptions needed somewhere in the receiving subtree, intersected
    with what the forwarder itself received.
    """
    below = _downstream_needed(session, needed)

    holdings: Dict[int, Set[int]] = {
        session.sender_host: set(range(total_encryptions))
    }
    received: Dict[int, int] = {}
    forwarded: Counter = Counter()
    counter = (
        LinkStressCounter(topology.num_links)
        if topology is not None and topology.supports_link_stress()
        else None
    )
    for edge in sorted(session.edges, key=lambda e: (e.send_time, e.arrival_time)):
        have = holdings.get(edge.src_host, set())
        carried = have & below.get(edge.dst_host, set())
        forwarded[edge.src_host] += len(carried)
        if counter is not None and carried:
            counter.add_path(
                topology.path_links(edge.src_host, edge.dst_host), len(carried)
            )
        if session.upstream.get(edge.dst_host) == edge.src_host:
            holdings[edge.dst_host] = carried
            received[edge.dst_host] = len(carried)

    hosts = sorted(session.arrival)
    return BandwidthSample(
        np.asarray([received.get(h, 0) for h in hosts], dtype=float),
        np.asarray([forwarded.get(h, 0) for h in hosts], dtype=float),
        counter.counts if counter is not None else None,
    )


def alm_unsplit_bandwidth(
    session: AlmSessionResult,
    message_size: int,
    topology: Optional[Topology] = None,
) -> BandwidthSample:
    """Flood the full rekey message over a generic ALM (protocol P0')."""
    out_degree: Counter = Counter(e.src_host for e in session.edges)
    hosts = sorted(session.arrival)
    received = np.full(len(hosts), float(message_size))
    forwarded = np.asarray(
        [out_degree.get(h, 0) * message_size for h in hosts], dtype=float
    )
    counter = None
    if topology is not None and topology.supports_link_stress():
        counter = LinkStressCounter(topology.num_links)
        for edge in session.edges:
            counter.add_path(
                topology.path_links(edge.src_host, edge.dst_host), message_size
            )
    return BandwidthSample(
        received, forwarded, counter.counts if counter is not None else None
    )
