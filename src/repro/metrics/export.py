"""Export of experiment series and observability artifacts.

Every figure of the paper is a plot; these helpers dump the regenerated
series as CSV so any plotting tool can redraw them (the repository avoids
a hard matplotlib dependency).  The trace/metrics exporters at the bottom
render :mod:`repro.trace` captures as JSONL traces and Prometheus text.

All writers create missing parent directories and encode UTF-8, so an
export path like ``out/run3/fig7.csv`` works on a fresh checkout and
non-ASCII values (member labels, error details) round-trip."""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, Optional, Sequence

from .stats import InverseCdf, RankedRuns


def _open_for_write(path: str):
    """Open ``path`` for text writing, creating parent directories and
    pinning UTF-8 (locale-independent exports)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, "w", newline="", encoding="utf-8")


def write_inverse_cdf(path: str, cdf: InverseCdf, value_name: str) -> None:
    """``fraction,value`` rows — one of the paper's inverse CDFs."""
    with _open_for_write(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(["fraction_of_users", value_name])
        for fraction, value in zip(cdf.fractions, cdf.values):
            writer.writerow([f"{fraction:.6f}", f"{value:.6f}"])


def write_ranked_runs(path: str, ranked: RankedRuns, value_name: str) -> None:
    """Fig.-6-style series: per-rank mean and 95th percentile."""
    with _open_for_write(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["fraction_of_users", f"{value_name}_mean", f"{value_name}_p95"]
        )
        for fraction, mean, p95 in zip(
            ranked.fractions, ranked.mean, ranked.p95
        ):
            writer.writerow(
                [f"{fraction:.6f}", f"{mean:.6f}", f"{p95:.6f}"]
            )


def write_table(path: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """A generic figure table (e.g. the Fig. 12 (J, L) surface)."""
    with _open_for_write(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(list(row))


def write_repair_report(
    path: str,
    rows: Iterable[Dict[str, object]],
    header: Optional[Sequence[str]] = None,
) -> None:
    """Reliability-sweep rows (loss rate, delivery ratio, repair
    counters) as CSV.  The column set is the first row's key order (or
    the explicit ``header``) and floats are fixed to six digits, so a
    seeded sweep exports byte-identical files run to run.  An empty sweep
    writes a header-only (or, with no header known, empty) file rather
    than raising — a zero-row sweep is a valid result."""
    rows = list(rows)
    if header is None:
        header = list(rows[0]) if rows else []
    else:
        header = list(header)
    with _open_for_write(path) as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(header)
        for row in rows:
            if list(row) != header:
                raise ValueError(
                    f"inconsistent repair-report columns: {list(row)} vs {header}"
                )
            rendered = [
                f"{value:.6f}" if isinstance(value, float) else str(value)
                for value in row.values()
            ]
            writer.writerow(rendered)


def write_violation_reports(path: str, reports: Iterable) -> None:
    """Invariant-violation reports (:class:`repro.verify.ViolationReport`)
    as CSV — one row per report, so a verification sweep's findings can be
    archived and diffed alongside the figure data."""
    with _open_for_write(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["checker", "citation", "detail", "offending_ids", "seed", "repro"]
        )
        for report in reports:
            writer.writerow(
                [
                    report.checker,
                    report.citation,
                    report.detail,
                    " ".join(report.offending_ids),
                    "" if report.seed is None else report.seed,
                    report.repro or "",
                ]
            )


def write_trace_jsonl(path: str, context) -> None:
    """A :class:`repro.trace.TraceContext`'s normalized trace as JSONL —
    one header line, one line per span (creation order), then the sorted
    metric block.  Byte-stable for a given seed: the file doubles as a
    golden regression artifact (see ``docs/OBSERVABILITY.md``)."""
    with _open_for_write(path) as handle:
        handle.write(context.render())


def write_prometheus(path: str, registry) -> None:
    """A :class:`repro.trace.MetricsRegistry` in Prometheus text
    exposition format (counters, gauges, and cumulative-bucket
    histograms), ready for a node-exporter textfile collector."""
    with _open_for_write(path) as handle:
        handle.write(registry.to_prometheus_text())


def write_latency_comparison(prefix: str, comparison) -> Dict[str, str]:
    """Dump a Figs.-6-11 result (a ``LatencyComparison``) as six CSVs:
    {tmesh, nice} x {stress, delay, rdp}.  Returns metric -> path."""
    paths: Dict[str, str] = {}
    for scheme_name, scheme in (("tmesh", comparison.tmesh), ("nice", comparison.nice)):
        for metric in ("stress", "app_delay", "rdp"):
            ranked = getattr(
                scheme, metric if metric != "app_delay" else "app_delay"
            )
            path = f"{prefix}_{scheme_name}_{metric}.csv"
            write_ranked_runs(path, ranked, metric)
            paths[f"{scheme_name}_{metric}"] = path
    return paths
