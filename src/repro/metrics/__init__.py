"""Measurement machinery for the paper's figures: inverse CDFs, latency
metrics (stress / app-layer delay / RDP), and bandwidth accounting."""

from .stats import InverseCdf, RankedRuns, inverse_cdf, ranked_across_runs, summarize
from .latency import LatencySample, alm_latency, tmesh_latency
from .bandwidth import (
    BandwidthSample,
    alm_split_bandwidth,
    alm_unsplit_bandwidth,
    tmesh_bandwidth,
)

__all__ = [
    "InverseCdf",
    "RankedRuns",
    "inverse_cdf",
    "ranked_across_runs",
    "summarize",
    "LatencySample",
    "alm_latency",
    "tmesh_latency",
    "BandwidthSample",
    "alm_split_bandwidth",
    "alm_unsplit_bandwidth",
    "tmesh_bandwidth",
]
