"""Measurement machinery for the paper's figures: inverse CDFs, latency
metrics (stress / app-layer delay / RDP), bandwidth accounting, and
repair accounting for reliable delivery under injected faults."""

from .stats import InverseCdf, RankedRuns, inverse_cdf, ranked_across_runs, summarize
from .latency import LatencySample, alm_latency, tmesh_latency
from .bandwidth import (
    BandwidthSample,
    alm_split_bandwidth,
    alm_unsplit_bandwidth,
    tmesh_bandwidth,
)
from .faults import RepairStats

__all__ = [
    "RepairStats",
    "InverseCdf",
    "RankedRuns",
    "inverse_cdf",
    "ranked_across_runs",
    "summarize",
    "LatencySample",
    "alm_latency",
    "tmesh_latency",
    "BandwidthSample",
    "alm_split_bandwidth",
    "alm_unsplit_bandwidth",
    "tmesh_bandwidth",
]
