"""Repair accounting for reliable delivery under injected faults.

:class:`RepairStats` is the counter block the NACK transport
(:mod:`repro.alm.reliable`) and the fault-injection benchmarks emit: how
many payload copies moved, how many were suppressed as duplicates, and
what the repair machinery (NACKs, retransmissions, heartbeats) cost on
top.  ``repair_overhead`` is the benchmarks' headline figure: repair
messages per payload-carrying message.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class RepairStats:
    """Counters of one reliable-multicast run."""

    #: payload-carrying copies sent over the mesh (first transmissions)
    data_sent: int = 0
    #: payloads handed to the application (exactly-once deliveries)
    data_delivered: int = 0
    #: copies discarded because the (source, seq) was already seen
    duplicates_suppressed: int = 0
    #: NACK messages sent (upstream or to the source)
    nacks_sent: int = 0
    #: repair copies retransmitted in answer to NACKs
    retransmissions: int = 0
    #: direct-to-source repair requests after upstream repair failed
    source_repairs: int = 0
    #: heartbeat/watermark messages sent or forwarded
    heartbeats_sent: int = 0
    #: (source, seq) holes abandoned after the retry budget ran out
    gave_up: int = 0

    # ------------------------------------------------------------------
    def add(self, other: "RepairStats") -> "RepairStats":
        """Accumulate another node's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def delivery_ratio(self, expected: int) -> float:
        """Fraction of expected exactly-once deliveries achieved."""
        if expected <= 0:
            return 1.0
        return self.data_delivered / expected

    @property
    def repair_messages(self) -> int:
        """Messages that exist only because of the repair protocol."""
        return self.nacks_sent + self.retransmissions + self.heartbeats_sent

    @property
    def repair_overhead(self) -> float:
        """Repair messages per payload-carrying first transmission."""
        if self.data_sent == 0:
            return 0.0
        return self.repair_messages / self.data_sent

    def as_row(self) -> dict:
        """A flat, deterministic dict for CSV export."""
        row = {f.name: getattr(self, f.name) for f in fields(self)}
        row["repair_overhead"] = round(self.repair_overhead, 6)
        return row
