#!/usr/bin/env python
"""Persistent measurement worker used by ``tools/perf_baseline.py``.

Reads workload names from stdin (one per line), measures each, and prints
a one-line JSON result.  The driver runs one worker per source tree — the
current one and, with ``--pre-tree``, a checkout of the pre-optimization
commit — and alternates per workload so both sides see the same machine
regime (shared hosts drift by tens of percent over minutes, which would
otherwise contaminate the speedup figures).

The worker prefers the tree's own :mod:`repro.perf.workloads`; on trees
that predate the perf package it falls back to inline definitions of the
same operations (the old tree is frozen, so the copies cannot diverge).
"""

from __future__ import annotations

import gc
import json
import statistics
import sys
import time


def _measure(fn, repeats, inner=1):
    # GC paused around each timed call, mirroring repro.perf.workloads.
    times = []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    try:
        for _ in range(repeats):
            if gc_was_enabled:
                gc.disable()
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            elapsed = time.perf_counter() - t0
            if gc_was_enabled:
                gc.enable()
            times.append(elapsed / inner)
    finally:
        if gc_was_enabled:
            gc.enable()
    med = statistics.median(times)
    return {
        "median_ms": med * 1e3,
        "min_ms": min(times) * 1e3,
        "ops_per_s": (1.0 / med) if med else None,
        "repeats": repeats,
    }


def _native_registry():
    from repro.perf.workloads import WORKLOADS, calibrate, measure

    ctx = {}

    def run(name):
        if name == "calibrate":
            return calibrate()
        workload = WORKLOADS[name]
        fn = workload.setup(ctx)
        fn()
        return measure(fn, workload.repeats)

    return run, set(WORKLOADS)


def _fallback_registry():
    """Inline workload definitions for trees without repro.perf (the
    pre-optimization baseline).  Operations and repeat counts mirror
    repro.perf.workloads exactly."""
    import numpy as np

    from repro.core.ids import Id, PAPER_SCHEME
    from repro.core.splitting import next_hop_needs, run_split_rekey
    from repro.core.tmesh import rekey_session
    from repro.experiments.common import build_group, build_topology
    from repro.experiments.latency_experiments import run_latency_experiment
    from repro.keytree.modified_tree import ModifiedKeyTree
    from repro.keytree.original_tree import OriginalKeyTree

    ctx = {}

    def group(num_users, seed=20):
        key = ("group", num_users, seed)
        if key not in ctx:
            topology = build_topology("gtitm", num_users, seed)
            ctx[key] = (topology, build_group(topology, num_users, seed=seed))
        return ctx[key]

    def message128():
        if "message128" not in ctx:
            _, g = group(128)
            tree = ModifiedKeyTree(g.scheme)
            for uid in g.user_ids:
                tree.request_join(uid)
            tree.process_batch()
            rng = np.random.default_rng(20)
            for i in rng.choice(128, size=32, replace=False):
                tree.request_leave(list(g.user_ids)[int(i)])
            ctx["message128"] = tree.process_batch()
        return ctx["message128"]

    def setup_rekey_1024():
        topology, g = group(1024)
        return lambda: rekey_session(g.server_table, g.tables, topology)

    def setup_tmesh_128():
        topology, g = group(128)
        return lambda: rekey_session(g.server_table, g.tables, topology)

    def setup_split_predicate():
        hop = Id([17, 3, 200, 9, 1])
        eids = [Id([17, 3]), Id([18]), Id([17, 3, 200, 9, 1]), Id([])]

        def pred():
            hits = 0
            for _ in range(250):
                for e in eids:
                    hits += next_hop_needs(e, hop, 2)
            return hits

        return pred

    def setup_split_session():
        topology, g = group(128)
        message = message128()
        session = rekey_session(g.server_table, g.tables, topology)
        return lambda: run_split_rekey(session, message)

    def setup_user_stress_sweep():
        topology, g = group(1024)
        session = rekey_session(g.server_table, g.tables, topology)

        def sweep():
            total = 0
            for member in session.receipts:
                total += session.user_stress(member)
            return total

        return sweep

    def setup_modified_tree_batch():
        ids = [Id([a, b, 0, 0, 0]) for a in range(16) for b in range(16)]

        def batch():
            tree = ModifiedKeyTree(PAPER_SCHEME)
            for uid in ids:
                tree.request_join(uid)
            tree.process_batch()
            for uid in ids[::4]:
                tree.request_leave(uid)
            return tree.process_batch().rekey_cost

        return batch

    def setup_original_tree_batch():
        def batch():
            tree = OriginalKeyTree(degree=4)
            tree.initialize_balanced(list(range(256)))
            for u in range(64):
                tree.request_leave(u)
            for j in range(64):
                tree.request_join(f"n{j}")
            return tree.process_batch(np.random.default_rng(0)).rekey_cost

        return batch

    def setup_id_assignment_join():
        topology, g = group(128)

        def one_join():
            outcome = g.assigner.determine_prefix(
                100,
                topology.access_rtt(100),
                topology,
                g.query,
                g.records[next(iter(g.records))],
            )
            return len(outcome.determined_prefix)

        return one_join

    def setup_fig7():
        return lambda: run_latency_experiment(
            "Fig 7", "gtitm", 256, mode="rekey", runs=2, seed=7
        )

    def setup_build_group_256():
        return lambda: build_group(
            build_topology("gtitm", 256, seed=20), 256, seed=20
        )

    registry = {
        "rekey_session_1024": (setup_rekey_1024, 15),
        "tmesh_session_128": (setup_tmesh_128, 15),
        "split_predicate": (setup_split_predicate, 30),
        "split_session": (setup_split_session, 15),
        "user_stress_sweep_1024": (setup_user_stress_sweep, 7),
        "modified_tree_batch": (setup_modified_tree_batch, 10),
        "original_tree_batch": (setup_original_tree_batch, 10),
        "id_assignment_join": (setup_id_assignment_join, 10),
        "fig7_experiment": (setup_fig7, 3),
        "build_group_256": (setup_build_group_256, 3),
    }

    def run(name):
        if name == "calibrate":
            def spin():
                acc = 0
                for i in range(200_000):
                    acc += i * i
                return acc

            spin()
            return _measure(spin, 11)
        setup, repeats = registry[name]
        fn = setup()
        fn()
        return _measure(fn, repeats)

    return run, set(registry)


def main() -> int:
    try:
        run, known = _native_registry()
    except ImportError:
        run, known = _fallback_registry()

    print(json.dumps({"ready": True, "workloads": sorted(known)}), flush=True)
    for line in sys.stdin:
        name = line.strip()
        if not name:
            continue
        if name == "exit":
            break
        try:
            if name != "calibrate" and name not in known:
                raise KeyError(f"unknown workload {name}")
            result = {"name": name, "result": run(name)}
        except Exception as exc:  # report, keep serving
            result = {"name": name, "error": f"{type(exc).__name__}: {exc}"}
        print(json.dumps(result), flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
