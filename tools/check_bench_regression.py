#!/usr/bin/env python
"""Compare a pytest-benchmark JSON export against ``BENCH_PR2.json``.

The bench lane can export machine-readable stats::

    PYTHONPATH=src pytest benchmarks/test_micro_core_ops.py \
        --benchmark-json=bench_out.json
    python tools/check_bench_regression.py bench_out.json

Benchmarks are matched to committed workloads by name substring
(``test_bench_tmesh_session`` -> ``tmesh_session_128``); each matched
benchmark's *minimum* must stay within the tolerance of the committed
*post* median (best-of-N is robust to ambient load spikes; a genuine
regression raises the minimum too).  Exit status 1 on any regression,
making this usable as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: pytest-benchmark test name fragment -> BENCH_PR2.json workload.
NAME_MAP = {
    "tmesh_session": "tmesh_session_128",
    "split_predicate": "split_predicate",
    "split_session": "split_session",
    "modified_tree_batch": "modified_tree_batch",
    "original_tree_batch": "original_tree_batch",
    "single_join_id_assignment": "id_assignment_join",
    "user_stress_indexed_1024": "user_stress_sweep_1024",
    "planned_rekey_session_1024": "planned_rekey_session_1024",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmark_json", type=Path)
    parser.add_argument(
        "--bench-file", type=Path, default=REPO_ROOT / "BENCH_PR2.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.75,
        help="allowed fractional regression (default 0.75; the ambient "
        "noise floor on shared hosts is ~35%% while guarded speedups "
        "are 3x-500x)",
    )
    args = parser.parse_args(argv)

    bench_data = json.loads(args.bench_file.read_text())
    committed = bench_data["ops"]
    report = json.loads(args.benchmark_json.read_text())

    # Normalize for machine speed the same way the in-pytest guard does.
    scale = 1.0
    reference = bench_data.get("calibration")
    if reference:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.perf.workloads import calibrate

        scale = max(1.0, calibrate()["median_ms"] / reference["median_ms"])
        print(f"machine scale vs committed calibration: {scale:.2f}\n")

    failures = []
    checked = 0
    for bench in report.get("benchmarks", []):
        workload = next(
            (w for frag, w in NAME_MAP.items() if frag in bench["name"]), None
        )
        if workload is None:
            continue
        entry = committed.get(workload)
        if not entry or not entry.get("post"):
            continue
        committed_ms = entry["post"]["median_ms"]
        measured_ms = bench["stats"]["min"] * 1e3
        checked += 1
        limit = committed_ms * scale * (1.0 + args.tolerance)
        status = "ok" if measured_ms <= limit else "REGRESSED"
        print(
            f"{workload:28s} {measured_ms:10.3f} ms  "
            f"(committed {committed_ms:.3f} ms, limit {limit:.3f} ms)  {status}"
        )
        if measured_ms > limit:
            failures.append(workload)

    if not checked:
        print("no benchmarks matched committed workloads", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} workload(s) regressed: {failures}", file=sys.stderr)
        return 1
    print(f"\nall {checked} matched workloads within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
