#!/usr/bin/env python
"""Measure the canonical perf workloads and write ``BENCH_PR2.json``.

Usage (from the repo root)::

    python tools/perf_baseline.py                       # refresh post numbers
    python tools/perf_baseline.py --only fig7_experiment
    python tools/perf_baseline.py --pre-tree /path/to/old/src
    python tools/perf_baseline.py --out BENCH_PR7.json \
        --compute numpy --compare BENCH_PR2.json        # PR-over-PR speedups

``--compute`` selects the :mod:`repro.compute` backend the post worker
runs under (via ``REPRO_COMPUTE``); ``--compare`` prints per-workload
speedup ratios against a previously committed bench file and exits 2 if
any shared workload regressed beyond ``REPRO_BENCH_TOLERANCE``.

The output records, per workload: the *pre-optimization* baseline
medians, the *post* medians measured now, and the speedup.  Both sides
are measured by :mod:`tools.bench_worker` subprocesses, **interleaved per
workload**, because timing on shared hosts drifts by tens of percent over
minutes — alternating keeps each pre/post pair in the same machine
regime, so the recorded speedups measure the code, not the weather.

``--pre-tree`` points at the ``src/`` of a pre-optimization checkout
(e.g. ``git worktree add /tmp/pre <seed-commit>`` then ``/tmp/pre/src``)
and re-measures the baseline live; without it the embedded pre medians
(measured against commit ``f09176b``) are used.  The workload definitions
live in :mod:`repro.perf.workloads` and are frozen so medians stay
comparable; ``benchmarks/test_perf_regression.py`` guards the micro
workloads against regressions relative to the committed file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.workloads import WORKLOADS  # noqa: E402

#: Medians measured on the pre-optimization tree (commit f09176b) with the
#: exact workload definitions of repro.perf.workloads, paired in-regime
#: with the post run that produced the committed BENCH_PR2.json.
PRE_PR_BASELINE = {
    "rekey_session_1024": {"median_ms": 14.905480999914289, "ops_per_s": 67.0894149612314, "repeats": 15},
    "tmesh_session_128": {"median_ms": 1.4210660001481301, "ops_per_s": 703.6970836651931, "repeats": 15},
    "split_predicate": {"median_ms": 1.7657255002632155, "ops_per_s": 566.3394450898119, "repeats": 30},
    "split_session": {"median_ms": 4.261203999703866, "ops_per_s": 234.6754579385299, "repeats": 15},
    "user_stress_sweep_1024": {"median_ms": 165.246733999993, "ops_per_s": 6.051556819271492, "repeats": 7},
    "modified_tree_batch": {"median_ms": 308.5726975000398, "ops_per_s": 3.240727413999001, "repeats": 10},
    "original_tree_batch": {"median_ms": 0.5765595005868818, "ops_per_s": 1734.4263670654925, "repeats": 10},
    "id_assignment_join": {"median_ms": 2.3172340002020064, "ops_per_s": 431.5489932880427, "repeats": 10},
    "fig7_experiment": {"median_ms": 2728.725437999856, "ops_per_s": 0.3664714617579832, "repeats": 3},
    "build_group_256": {"median_ms": 1423.6197299997002, "ops_per_s": 0.7024347716789585, "repeats": 3},
}


class Worker:
    """A persistent ``tools/bench_worker.py`` subprocess bound to one
    source tree."""

    def __init__(self, src_tree: Path, extra_env=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_tree)
        if extra_env:
            env.update(extra_env)
        self.proc = subprocess.Popen(
            [sys.executable, str(REPO_ROOT / "tools" / "bench_worker.py")],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        ready = json.loads(self.proc.stdout.readline())
        self.workloads = set(ready.get("workloads", []))

    def ask(self, name: str):
        self.proc.stdin.write(name + "\n")
        self.proc.stdin.flush()
        reply = json.loads(self.proc.stdout.readline())
        if "error" in reply:
            return None, reply["error"]
        return reply["result"], None

    def close(self) -> None:
        try:
            self.proc.stdin.write("exit\n")
            self.proc.stdin.flush()
        except (BrokenPipeError, ValueError):
            pass
        self.proc.wait(timeout=30)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR2.json",
        help="where to write the results (default: repo-root BENCH_PR2.json)",
    )
    parser.add_argument(
        "--compute",
        default=None,
        help="repro.compute backend for the post measurements (sets "
        "REPRO_COMPUTE in the post worker, e.g. --compute numpy)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        help="a previously committed bench JSON (e.g. BENCH_PR2.json): "
        "print per-workload speedup ratios of its post medians over this "
        "run's, and exit 2 if any shared workload regressed beyond "
        "REPRO_BENCH_TOLERANCE (default 0.75, calibration-scaled)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="measure only these workloads (entries for the others are "
        "copied from the existing output file when present)",
    )
    parser.add_argument(
        "--pre-tree",
        type=Path,
        default=None,
        help="src/ directory of a pre-optimization checkout; measures the "
        "baseline live (interleaved with post) instead of using the "
        "embedded pre medians",
    )
    parser.add_argument(
        "--pre-file",
        type=Path,
        default=None,
        help="JSON file of pre-optimization medians to use instead of the "
        "embedded baseline (ignored with --pre-tree)",
    )
    parser.add_argument(
        "--rss",
        action="store_true",
        help="also measure each workload's peak RSS in a fresh child "
        "process (one setup + one run) and record it as an 'rss' column; "
        "benchmarks/test_scale_rss.py guards these against BENCH_PR9.json",
    )
    args = parser.parse_args(argv)

    pre_static = dict(PRE_PR_BASELINE)
    if args.pre_file is not None:
        pre_static.update(json.loads(args.pre_file.read_text()))

    previous_ops = {}
    if args.only and args.output.exists():
        previous_ops = json.loads(args.output.read_text()).get("ops", {})

    if args.only:
        names = list(args.only)
    else:
        # Opt-in workloads (the 1M rung) only run when named explicitly.
        names = [n for n, w in WORKLOADS.items() if not w.optin]
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workloads: {unknown} (have {list(WORKLOADS)})")

    extra_env = {"REPRO_COMPUTE": args.compute} if args.compute else None
    post_worker = Worker(REPO_ROOT / "src", extra_env=extra_env)
    pre_worker = Worker(args.pre_tree) if args.pre_tree else None
    try:
        ops = {}
        for name, workload in WORKLOADS.items():
            if name not in names:
                if name in previous_ops:
                    ops[name] = previous_ops[name]
                continue
            if pre_worker is not None and name in pre_worker.workloads:
                pre, pre_err = pre_worker.ask(name)
                if pre_err:
                    print(f"{name}: pre-tree failed: {pre_err}", file=sys.stderr)
            elif pre_worker is not None:
                pre = None
            else:
                pre = pre_static.get(name)
            post, post_err = post_worker.ask(name)
            if post_err:
                print(f"{name}: failed: {post_err}", file=sys.stderr)
                return 1
            entry = {
                "group_size": workload.group_size,
                "micro": workload.micro,
                "pre": pre,
                "post": post,
            }
            if pre:
                entry["speedup"] = pre["median_ms"] / post["median_ms"]
            if args.rss:
                from repro.perf.rss import measure_peak_rss

                record = measure_peak_rss(name)
                entry["rss"] = {"peak_rss_bytes": record["peak_rss_bytes"]}
            ops[name] = entry
            speedup = entry.get("speedup")
            rss_note = ""
            if "rss" in entry:
                mib = entry["rss"]["peak_rss_bytes"] / (1024 * 1024)
                rss_note = f"   rss {mib:8.1f} MiB"
            print(
                f"{name:28s} post {post['median_ms']:10.3f} ms"
                + (f"   pre {pre['median_ms']:10.3f} ms" if pre else "")
                + (f"   speedup {speedup:5.2f}x" if speedup else "")
                + rss_note
            )

        calibration, _ = post_worker.ask("calibrate")
    finally:
        post_worker.close()
        if pre_worker is not None:
            pre_worker.close()

    payload = {
        "schema": "repro-bench-v1",
        "baseline_commit": "f09176b",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        # Pure-Python spin timed on the machine that produced the
        # medians; regression checks scale their limits by the ratio of a
        # fresh calibration to this one.
        "calibration": calibration,
        "ops": ops,
    }
    if args.compute:
        payload["compute"] = args.compute
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.compare is not None:
        return compare(json.loads(args.compare.read_text()), payload,
                       args.compare.name)
    return 0


def compare(old: dict, new: dict, old_name: str) -> int:
    """Per-workload speedup of ``new`` over ``old`` (ratio of post
    medians), with the regression lane's calibration scaling and
    tolerance.  Returns 2 when any shared workload regressed."""
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.75"))
    old_cal = (old.get("calibration") or {}).get("median_ms")
    new_cal = (new.get("calibration") or {}).get("median_ms")
    # How much slower this machine/moment is than the one that produced
    # the old file; floored at 1.0 so fast machines don't read as wins.
    scale = max(1.0, new_cal / old_cal) if old_cal and new_cal else 1.0
    regressed = []
    print(f"\nspeedup vs {old_name} (machine scale {scale:.2f}):")
    for name, entry in new["ops"].items():
        old_entry = old.get("ops", {}).get(name)
        old_post = (old_entry or {}).get("post")
        post = entry.get("post")
        if not old_post or not post:
            print(f"{name:28s} (no {old_name} post median; skipped)")
            continue
        ratio = old_post["median_ms"] / post["median_ms"]
        limit = old_post["median_ms"] * scale * (1.0 + tolerance)
        flag = ""
        if post["median_ms"] > limit:
            regressed.append(name)
            flag = "  REGRESSED"
        print(
            f"{name:28s} {old_post['median_ms']:10.3f} ms -> "
            f"{post['median_ms']:10.3f} ms   {ratio:6.2f}x{flag}"
        )
    if regressed:
        print(
            f"regressions beyond +{tolerance:.0%} tolerance: {regressed}",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
