#!/usr/bin/env python
"""Commit-time gate for the project's static-analysis pass.

Usage::

    python tools/lint.py                      # lint src/ against the
                                              # committed baseline
    python tools/lint.py --baseline-write     # re-record the baseline
                                              # (shrinks when findings
                                              # are fixed)
    python tools/lint.py --rules determinism  # one family (or rule id)
    python tools/lint.py --list-rules         # the catalog
    python tools/lint.py tests/lint_fixtures/badtree --no-baseline
    python tools/lint.py --changed            # only files git sees as
                                              # changed vs HEAD (fast
                                              # pre-commit run)
    python tools/lint.py --changed=main       # ... vs another ref
    python tools/lint.py --format=sarif       # SARIF 2.1.0 for review UIs

Exit codes: 0 — no new violations (baselined/suppressed findings are
reported but do not gate); 2 — at least one new violation; 1 — usage or
internal error.  See docs/STATIC_ANALYSIS.md for the rule catalog,
suppression policy, and baseline workflow.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import Baseline, LintEngine, all_rules, select_rules  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / ".lint-baseline.json"


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="tools/lint.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "roots",
        nargs="*",
        type=Path,
        help="directories containing the top-level package dir "
        "(default: <repo>/src)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is new",
    )
    parser.add_argument(
        "--baseline-write",
        action="store_true",
        help="re-record the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids or families to run "
        "(default: all)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable report (alias for --format=json)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (sarif renders in code-review UIs)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        metavar="REF",
        help="lint only files git reports as changed against REF "
        "(default HEAD), plus untracked files — the fast pre-commit run; "
        "exit codes are unchanged",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    return parser.parse_args(argv)


def _changed_files(ref: str) -> list[Path] | None:
    """Absolute paths of ``.py`` files changed vs ``ref`` (tracked
    diffs plus untracked files), or ``None`` when git is unusable —
    the caller falls back to a full scan rather than gating on nothing.

    Runs git in the current working directory, so the diff scope follows
    wherever the gate is invoked (normally the repo root)."""
    top = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
    )
    if top.returncode != 0:
        print(
            "warning: not inside a git work tree; scanning the full tree "
            "instead",
            file=sys.stderr,
        )
        return None
    base = Path(top.stdout.strip())
    files: set[Path] = set()
    for args in (
        # Both spellings emit toplevel-relative paths.
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "--full-name"],
    ):
        proc = subprocess.run(args, capture_output=True, text=True)
        if proc.returncode != 0:
            print(
                f"warning: {' '.join(args)} failed "
                f"({proc.stderr.strip() or 'no git?'}); "
                "scanning the full tree instead",
                file=sys.stderr,
            )
            return None
        for line in proc.stdout.splitlines():
            if line.endswith(".py"):
                files.add((base / line).resolve())
    return sorted(files)


def _sarif_payload(result, rules) -> dict:
    """SARIF 2.1.0: the *new* findings only, so a reviewer sees exactly
    what gates (baselined/suppressed findings stay out, matching the
    exit code)."""
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "shortDescription": {"text": rule.description},
                                "help": {"text": f"enforces: {rule.citation}"},
                                "defaultConfiguration": {
                                    "level": rule.severity
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": violation.rule,
                        "level": violation.severity,
                        "message": {"text": violation.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": violation.path,
                                        "uriBaseId": "SRCROOT",
                                    },
                                    "region": {
                                        "startLine": violation.line,
                                        "startColumn": violation.col + 1,
                                        "snippet": {"text": violation.source},
                                    },
                                }
                            }
                        ],
                    }
                    for violation in result.new
                ],
            }
        ],
    }


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id}  [{rule.family}/{rule.severity}]")
        print(f"    {rule.description}")
        print(f"    enforces: {rule.citation}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    if args.list_rules:
        return _list_rules()

    roots = args.roots or [REPO_ROOT / "src"]
    for root in roots:
        if not root.is_dir():
            print(f"error: not a directory: {root}", file=sys.stderr)
            return 1
    try:
        rules = select_rules(args.rules.split(",")) if args.rules else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    only = None
    if args.changed is not None:
        only = _changed_files(args.changed)
        if only == []:
            # Nothing changed: scan nothing, gate on nothing.
            print("no changed .py files; nothing to lint")
            return 0

    engine = LintEngine(roots, rules=rules, only=only)
    baseline = (
        Baseline() if args.no_baseline else Baseline.load(args.baseline)
    )
    result = engine.run(baseline)

    if args.baseline_write:
        Baseline.from_violations(result.violations).save(args.baseline)
        print(
            f"baseline written: {args.baseline} "
            f"({len(result.violations)} finding(s) recorded)"
        )
        return 0

    fmt = "json" if args.json else args.format
    if fmt == "json":
        payload = {
            "summary": result.summary(),
            "new": [dataclasses.asdict(v) for v in result.new],
            "baselined": [dataclasses.asdict(v) for v in result.baselined],
            "suppressed": [dataclasses.asdict(v) for v in result.suppressed],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif fmt == "sarif":
        print(
            json.dumps(
                _sarif_payload(result, engine.rules),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in result.new:
            print(violation.render())
        if result.baselined:
            print(f"({len(result.baselined)} baselined finding(s) not shown; "
                  "run --baseline-write after fixing to shrink the baseline)")
        print(result.summary())
    return 2 if result.new else 0


if __name__ == "__main__":
    sys.exit(main())
