#!/usr/bin/env python
"""Run the invariant-checker oracle suite over fixed seed scenarios.

Scenarios (each runs under a full :mod:`repro.verify` context — every
T-mesh session is checked against Theorem 1, Lemmas 1-2, and the
brute-force differential oracle; tables against Definition 3; key trees
against Section 2.4):

* ``static-rekey``    — a protocol-built group (default 1024 users, the
                        paper's headline size) serving one rekey and one
                        data multicast, plus the batch-rekey key tree.
* ``fig7-latency``    — the Fig. 7 latency workload (GT-ITM, rekey mode)
                        with verification hooks active.
* ``churn``           — interleaved joins/leaves with table repair and a
                        verified multicast after every batch.
* ``distributed``     — the message-level protocol world, audited for
                        emergent 1-consistency and duplicate-free
                        interval delivery at quiescence.
* ``traced-rekey``    — verification and tracing hooks composed on a
                        256-user rekey, with the trace-determinism
                        invariant (same seed => byte-identical trace)
                        checked over two runs.
* ``compute-backends`` — the same fixed-seed session replayed through
                        every :mod:`repro.compute` backend under full
                        verification, then diffed backend against
                        backend: the bitwise-equivalence contract.
* ``sharded-scale``   — the 10k rung of the scale ladder under full
                        verification: the dense object path (trie-derived
                        tables, differential oracle included) against the
                        streaming array path, held to one canonical
                        receipt digest; includes its own corruption
                        canary (a server table with a dropped row-0
                        entry MUST trip the checkers at 10k).
* ``corruption-canary`` — a deliberately corrupted server table; this
                        scenario MUST trip the checkers.  It proves the
                        gate can fail, so a silently broken verification
                        layer cannot masquerade as a green suite.

Exit status: 0 all green; 1 a scenario raised an InvariantViolation;
2 the corruption canary went undetected (the verification layer itself is
broken).  ``--csv`` archives any violation reports via
:func:`repro.metrics.export.write_violation_reports`.

Usage::

    PYTHONPATH=src python tools/check_invariants.py
    PYTHONPATH=src python tools/check_invariants.py --users 256 --seed 7
    PYTHONPATH=src python tools/check_invariants.py --only corruption-canary
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))
sys.path.insert(0, str(_ROOT))  # for tests.conftest (canary world builder)

import numpy as np  # noqa: E402

from repro.core.ids import Id, IdScheme  # noqa: E402
from repro.core.tmesh import data_session, rekey_session  # noqa: E402
from repro.keytree.modified_tree import ModifiedKeyTree  # noqa: E402
from repro.metrics.export import write_violation_reports  # noqa: E402
from repro.verify import InvariantViolation, verification  # noqa: E402

SMALL_SCHEME = IdScheme(num_digits=3, base=4)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_static_rekey(seed: int, users: int) -> str:
    from repro.experiments.common import build_group, build_topology

    topology = build_topology("gtitm", users, seed=seed)
    with verification(seed=seed) as ctx:
        group = build_group(topology, users, seed=seed)  # observed: Def. 3
        rekey_session(group.server_table, group.tables, topology)
        sender = sorted(group.records)[seed % group.num_users]
        data_session(sender, group.tables, topology)
        tree = ModifiedKeyTree(group.scheme)
        for uid in group.records:
            tree.request_join(uid)
        message = tree.process_batch()
        ctx.observe_key_tree(tree)
        ctx.observe_rekey(message, tree.user_ids, group.scheme)
        return ctx.summary()


def scenario_fig7_latency(seed: int, users: int) -> str:
    from repro.experiments.latency_experiments import run_latency_experiment

    with verification(seed=seed) as ctx:
        run_latency_experiment(
            "Fig 7 (verified)", "gtitm", min(users, 128), mode="rekey",
            runs=2, seed=seed,
        )
        return ctx.summary()


def scenario_churn(seed: int, users: int) -> str:
    from repro.core.id_assignment import IdAssigner
    from repro.core.membership import Group
    from repro.experiments.common import _default_thresholds
    from repro.net.planetlab import MatrixTopology

    n_hosts = 24
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(n_hosts, 2))
    matrix = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2))
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    topology = MatrixTopology(matrix)
    scheme = IdScheme(num_digits=3, base=3)
    with verification(seed=seed) as ctx:
        group = Group(
            scheme, topology, server_host=n_hosts - 1,
            assigner=IdAssigner(scheme, _default_thresholds(scheme)),
            k=2, rng=np.random.default_rng(seed),
        )
        free = list(range(n_hosts - 1))
        members = []
        for step in range(60):
            if free and (not members or rng.random() < 0.6):
                host = free.pop(int(rng.integers(0, len(free))))
                members.append(group.join(host).record.user_id)
            else:
                uid = members.pop(int(rng.integers(0, len(members))))
                host = group.records[uid].host
                group.leave(uid)
                group.repair_tables()
                free.append(host)
            if len(members) >= 2 and step % 5 == 0:
                ctx.observe_group(group)
                rekey_session(group.server_table, group.tables, topology)
        return ctx.summary()


def scenario_distributed(seed: int, users: int) -> str:
    from repro.distributed import DistributedGroup
    from repro.net import TransitStubParams, TransitStubTopology

    params = TransitStubParams(
        transit_domains=3, transit_per_domain=3,
        stubs_per_transit=2, stub_size=6,
    )
    topology = TransitStubTopology(num_hosts=41, params=params, seed=seed)
    world = DistributedGroup(topology, server_host=40, seed=seed)
    for i in range(12):
        world.schedule_join(i, at=1.0 + i * 300.0)
    world.end_interval(at=5000.0)
    for i in range(3):
        world.schedule_leave_of_host(i, at=6000.0 + i * 200.0)
    world.schedule_recovery_round(at=7000.0)
    world.end_interval(at=8000.0)
    with verification(seed=seed) as ctx:
        world.run()  # quiescent audit fires automatically
        world.verify_invariants()
        return ctx.summary()


def scenario_traced_rekey(seed: int, users: int) -> str:
    """Verification and tracing hooks composed on one workload, plus the
    trace-determinism invariant: the same seed must render the same
    bytes, run to run (docs/OBSERVABILITY.md)."""
    from repro.trace import tracing
    from repro.verify.report import ViolationReport

    def one_run() -> tuple:
        from repro.experiments.common import build_group, build_topology

        size = min(users, 256)
        topology = build_topology("gtitm", size, seed=seed)
        with verification(seed=seed) as vctx, tracing(
            seed=seed, label="traced-rekey"
        ) as tctx:
            group = build_group(topology, size, seed=seed)
            rekey_session(group.server_table, group.tables, topology)
            tree = ModifiedKeyTree(group.scheme)
            for uid in sorted(group.records):
                tree.request_join(uid)
            message = tree.process_batch()
            vctx.observe_key_tree(tree)
            vctx.observe_rekey(message, tree.user_ids, group.scheme)
        return vctx.summary(), tctx.render()

    verify_summary, first = one_run()
    _, second = one_run()
    if first != second:
        diverging = next(
            (i for i, (a, b) in enumerate(
                zip(first.splitlines(), second.splitlines())
            ) if a != b),
            min(len(first.splitlines()), len(second.splitlines())),
        )
        raise InvariantViolation(
            [
                ViolationReport(
                    checker="trace-determinism",
                    citation="docs/OBSERVABILITY.md",
                    detail=f"same-seed traces diverge at line {diverging}",
                    seed=seed,
                    repro="PYTHONPATH=src python tools/check_invariants.py "
                    f"--only traced-rekey --seed {seed}",
                )
            ]
        )
    return (f"{verify_summary}; trace stable over 2 runs "
            f"({len(first.splitlines())} lines)")


def scenario_compute_backends(seed: int, users: int) -> str:
    """Replay one fixed-seed session through every compute backend under
    full verification (each run is checked against the brute-force
    differential oracle), then diff the backends against each other: the
    bitwise-equivalence contract of :mod:`repro.compute`
    (docs/PERFORMANCE.md).  Runs reference-only when numpy is absent."""
    import pickle

    from repro.compute import ComputeUnavailable, create_backend
    from repro.experiments.common import build_group, build_topology
    from repro.verify.report import ViolationReport

    size = min(users, 256)
    topology = build_topology("gtitm", size, seed=seed)
    group = build_group(topology, size, seed=seed)
    backends = ["reference"]
    try:
        create_backend("numpy")
        backends.append("numpy")
    except ComputeUnavailable:
        pass

    states = {}
    summaries = []
    for name in backends:
        with verification(seed=seed) as ctx:
            session = rekey_session(
                group.server_table, group.tables, topology, compute=name
            )
            states[name] = pickle.dumps(
                (session.receipts, session.edges, session.duplicate_copies)
            )
            summaries.append(f"{name}: {ctx.summary()}")
    if len(backends) == 2 and states["reference"] != states["numpy"]:
        raise InvariantViolation(
            [
                ViolationReport(
                    checker="compute-equivalence",
                    citation="docs/PERFORMANCE.md (compute backends)",
                    detail="reference and numpy backends produced "
                    "different session bytes",
                    seed=seed,
                    repro="PYTHONPATH=src python tools/check_invariants.py "
                    f"--only compute-backends --seed {seed}",
                )
            ]
        )
    return "; ".join(summaries) + (
        "; backends bitwise-equal" if len(backends) == 2
        else "; numpy unavailable (reference only)"
    )


def scenario_sharded_scale(seed: int, users: int) -> str:
    """The 10k rung of the scale ladder under full verification
    (docs/PERFORMANCE.md, "Scale ladder").

    The dense object path runs a complete verified rekey session —
    Theorem 1, Lemmas 1-2, *and* the brute-force differential oracle,
    which until this rung was only exercised up to 1024 users — then the
    streaming array path replays the same world and the two canonical
    receipt digests must match bitwise.  A final internal canary proves
    the checkers still bite at this size: a server table with one row-0
    entry dropped cuts off a top-level subtree and MUST raise."""
    from repro.core.neighbor_table import StaticPrimaryTable
    from repro.perf.scale import (
        build_array_world,
        build_scale_world,
        run_streaming_rekey,
    )
    from repro.verify.report import ViolationReport

    size = 10_000
    repro_cmd = ("PYTHONPATH=src python tools/check_invariants.py "
                 f"--only sharded-scale --seed {seed}")
    topology, server_table, tables = build_scale_world(size, seed=seed)
    with verification(seed=seed) as ctx:
        session = rekey_session(server_table, tables, topology)
        dense_digest = session.canonical_receipt_digest()
        dense_summary = ctx.summary()

    world = build_array_world(size, seed=seed)
    with verification(seed=seed) as ctx:
        stream = run_streaming_rekey(world)
        stream_summary = ctx.summary()
    if dense_digest != stream.digest:
        raise InvariantViolation(
            [
                ViolationReport(
                    checker="scale-digest-equivalence",
                    citation="docs/PERFORMANCE.md (Scale ladder)",
                    detail=f"dense digest {dense_digest} != streaming "
                    f"digest {stream.digest} at N={size}",
                    seed=seed,
                    repro=repro_cmd,
                )
            ]
        )

    # Internal corruption canary at 10k: drop one row-0 entry from the
    # server table; the subtree behind it never hears the rekey and the
    # exactly-once checker must notice.
    crippled = StaticPrimaryTable(
        server_table.scheme, server_table.owner,
        [server_table.row_primaries(0)[1:]],
    )
    try:
        with verification(seed=seed):
            rekey_session(crippled, tables, topology)
    except InvariantViolation:
        pass
    else:
        raise InvariantViolation(
            [
                ViolationReport(
                    checker="sharded-scale-canary",
                    citation="Theorem 1",
                    detail=f"a dropped server row-0 entry went undetected "
                    f"at N={size}",
                    seed=seed,
                    repro=repro_cmd,
                )
            ]
        )
    return (f"dense [{dense_summary}] == streaming [{stream_summary}], "
            f"digest {dense_digest[:12]}..., {stream.num_shards} shard(s), "
            "canary tripped")


def scenario_corruption_canary(seed: int, users: int) -> str:
    """MUST raise: a server table with one entry emptied cuts off a
    level-1 subtree, violating Theorem 1 on the next multicast."""
    from tests.conftest import make_static_world

    rng = np.random.default_rng(seed)
    ids = set()
    while len(ids) < 30:
        ids.add(
            tuple(int(rng.integers(0, SMALL_SCHEME.base))
                  for _ in range(SMALL_SCHEME.num_digits))
        )
    ids = [Id(t) for t in sorted(ids)]
    topology, _, tables, server_table = make_static_world(
        SMALL_SCHEME, ids, seed=seed, k=2
    )
    for j in range(SMALL_SCHEME.base):
        victims = [r.user_id for r in list(server_table.entry(0, j))]
        if victims:
            for uid in victims:
                server_table.remove(uid)
            break
    with verification(seed=seed):
        rekey_session(server_table, tables, topology)
    return "corruption went UNDETECTED"


SCENARIOS = [
    ("static-rekey", scenario_static_rekey, False),
    ("fig7-latency", scenario_fig7_latency, False),
    ("churn", scenario_churn, False),
    ("distributed", scenario_distributed, False),
    ("traced-rekey", scenario_traced_rekey, False),
    ("compute-backends", scenario_compute_backends, False),
    ("sharded-scale", scenario_sharded_scale, False),
    ("corruption-canary", scenario_corruption_canary, True),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Invariant-checker oracle suite (docs/VERIFY.md)"
    )
    parser.add_argument("--seed", type=int, default=7, help="base scenario seed")
    parser.add_argument(
        "--users", type=int, default=1024,
        help="group size for the static-rekey scenario (paper headline: 1024)",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        choices=[name for name, _, _ in SCENARIOS],
        help="run only the named scenario(s)",
    )
    parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="archive violation reports (if any) as CSV",
    )
    args = parser.parse_args(argv)

    failures = []
    collected = []
    canary_ok = True
    for name, fn, expect_violation in SCENARIOS:
        if args.only and name not in args.only:
            continue
        start = time.perf_counter()
        try:
            summary = fn(args.seed, args.users)
        except InvariantViolation as violation:
            elapsed = time.perf_counter() - start
            collected.extend(violation.reports)
            if expect_violation:
                checkers = ", ".join(sorted(set(violation.checkers)))
                print(f"[ OK ] {name:18s} ({elapsed:6.1f}s)  "
                      f"canary tripped as required: {checkers}")
            else:
                failures.append(name)
                print(f"[FAIL] {name:18s} ({elapsed:6.1f}s)")
                print(str(violation))
        else:
            elapsed = time.perf_counter() - start
            if expect_violation:
                canary_ok = False
                print(f"[FAIL] {name:18s} ({elapsed:6.1f}s)  {summary}")
            else:
                print(f"[ OK ] {name:18s} ({elapsed:6.1f}s)  {summary}")

    if args.csv and collected:
        write_violation_reports(args.csv, collected)
        print(f"archived {len(collected)} report(s) to {args.csv}")
    if not canary_ok:
        print("FATAL: the corruption canary went undetected — the "
              "verification layer is broken", file=sys.stderr)
        return 2
    if failures:
        print(f"{len(failures)} scenario(s) violated invariants: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
