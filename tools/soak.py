#!/usr/bin/env python
"""Soak/chaos driver for the live rekeying service (docs/SERVICE.md).

Runs :class:`repro.service.SoakHarness` against a real
:class:`repro.service.RekeyService` — by default with sockets, realtime
pacing, a fault plan (background drops + per-cycle crash windows), a
mid-run graceful restart from a snapshot, and a live metrics scrape —
until the wall-clock budget runs out.  Exits non-zero if any quiescent
checkpoint found a :mod:`repro.verify` violation or the restarted
server's key-tree state was not byte-identical to the snapshot.

The acceptance run::

    PYTHONPATH=src python tools/soak.py --seconds 30 --seed 7

Deterministic fallback (no sockets, virtual clock; CI sandboxes)::

    PYTHONPATH=src python tools/soak.py --cycles 12 --seed 7 \
        --no-sockets --no-realtime
"""

from __future__ import annotations

import argparse
import sys

from repro.net import TransitStubParams, TransitStubTopology
from repro.service import PROFILES, SoakHarness
from repro.trace import tracing


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=None,
                        help="wall-clock soak budget (default: cycle-bounded)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="cycle budget (default: 12 when --seconds unset)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="steady")
    parser.add_argument("--hosts", type=int, default=33,
                        help="topology size incl. the server host")
    parser.add_argument("--interval-ms", type=float, default=2000.0,
                        help="virtual ms per rekey interval")
    parser.add_argument("--checkpoint-every", type=int, default=4,
                        help="cycles between invariant checkpoints")
    parser.add_argument("--drop-rate", type=float, default=0.03,
                        help="fault-plan background drop rate")
    parser.add_argument("--crash-every", type=int, default=6,
                        help="cycles between chaos crash windows (0: never)")
    parser.add_argument("--time-scale", type=float, default=1e-5,
                        help="real seconds per virtual ms in realtime mode")
    parser.add_argument("--no-faults", action="store_true",
                        help="clean-network soak (no fault plan)")
    parser.add_argument("--no-sockets", action="store_true",
                        help="in-process delivery (sandboxes without sockets)")
    parser.add_argument("--no-realtime", action="store_true",
                        help="virtual clock, collapse idle time")
    parser.add_argument("--no-restart", action="store_true",
                        help="skip the mid-run shutdown/restore restart")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="write the final state snapshot here")
    parser.add_argument("--scrape-dir", default=None, metavar="DIR",
                        help="write live Prometheus scrapes under DIR")
    parser.add_argument("--metrics-http", action="store_true",
                        help="serve GET /metrics on an ephemeral port")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    cycles = args.cycles
    if args.seconds is None and cycles is None:
        cycles = 12
    topology = TransitStubTopology(
        num_hosts=args.hosts,
        params=TransitStubParams(
            transit_domains=3,
            transit_per_domain=3,
            stubs_per_transit=2,
            stub_size=max(2, (args.hosts - 9) // 6 + 1),
        ),
        seed=args.seed,
    )
    with tracing(seed=args.seed):
        harness = SoakHarness(
            topology,
            server_host=0,
            seed=args.seed,
            profile=args.profile,
            interval_ms=args.interval_ms,
            checkpoint_every=args.checkpoint_every,
            chaos=not args.no_faults,
            drop_rate=args.drop_rate,
            crash_every=args.crash_every,
            realtime=not args.no_realtime,
            time_scale=args.time_scale,
            use_sockets=not args.no_sockets,
            scrape_dir=args.scrape_dir,
            snapshot_path=args.snapshot,
            restart_at_cycle=None if args.no_restart else 5,
            metrics_http=args.metrics_http,
        )
        report = harness.run(seconds=args.seconds, cycles=cycles)
    print(report.render())
    return 1 if (report.violations or not report.restart_state_match) else 0


if __name__ == "__main__":
    sys.exit(main())
