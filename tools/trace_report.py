#!/usr/bin/env python
"""Summarize (or golden-compare) a normalized trace JSONL file.

A trace comes out of ``python -m repro --trace=run.jsonl <cmd>``, the
:func:`repro.metrics.export.write_trace_jsonl` exporter, or the golden
generators in :mod:`repro.trace.golden`.  This tool renders the capture
as a human-readable report:

* the header (format version, seed, label, span count);
* span counts grouped by name, with the maximum tree depth;
* the counter/gauge table and histogram summaries.

With ``--golden EXPECTED`` it instead byte-compares the trace against a
committed golden fixture and exits 0 on an exact match, 1 with a diff
summary otherwise — the same discipline ``tests/test_trace_golden.py``
enforces in the suite.

Usage::

    PYTHONPATH=src python -m repro --trace=run.jsonl fig 7
    PYTHONPATH=src python tools/trace_report.py run.jsonl
    PYTHONPATH=src python tools/trace_report.py run.jsonl \
        --golden tests/fixtures/trace_fig7.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.trace import compare_traces  # noqa: E402
from repro.trace.spans import ROOT  # noqa: E402


def load_records(path: str) -> List[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def report(path: str, records: List[dict]) -> str:
    headers = [r for r in records if r.get("kind") == "header"]
    spans = [r for r in records if r.get("kind") == "span"]
    counters = [r for r in records if r.get("kind") == "counter"]
    gauges = [r for r in records if r.get("kind") == "gauge"]
    histograms = [r for r in records if r.get("kind") == "histogram"]

    lines = [f"trace report: {path}"]
    if headers:
        h = headers[0]
        lines.append(
            f"  header: version={h.get('version')} seed={h.get('seed')} "
            f"label={h.get('label')} spans={h.get('spans')}"
        )

    by_name: Dict[str, int] = {}
    depth: Dict[int, int] = {}
    max_depth = 0
    for span in spans:
        by_name[span["name"]] = by_name.get(span["name"], 0) + 1
        parent = span["parent"]
        d = 0 if parent == ROOT else depth.get(parent, 0) + 1
        depth[span["id"]] = d
        max_depth = max(max_depth, d)
    lines.append(f"  spans: {len(spans)} total, max depth {max_depth}")
    for name in sorted(by_name):
        lines.append(f"    {name:24s} {by_name[name]}")

    if counters or gauges:
        lines.append(f"  metrics: {len(counters)} counter(s), "
                     f"{len(gauges)} gauge(s)")
        for record in counters + gauges:
            labels = "".join(
                f" {k}={v}" for k, v in sorted(record["labels"].items())
            )
            lines.append(
                f"    {record['name']:32s} {record['value']}{labels}"
            )
    if histograms:
        lines.append(f"  histograms: {len(histograms)}")
        for record in histograms:
            count = record["count"]
            mean = record["sum"] / count if count else 0.0
            lines.append(
                f"    {record['name']:32s} count={count} "
                f"sum={record['sum']:.3f} mean={mean:.3f}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize or golden-compare a normalized trace "
        "(docs/OBSERVABILITY.md)"
    )
    parser.add_argument("trace", help="trace JSONL file to inspect")
    parser.add_argument(
        "--golden", default=None, metavar="EXPECTED",
        help="byte-compare against a golden fixture instead of "
        "summarizing; exit 1 on any difference",
    )
    args = parser.parse_args(argv)

    if args.golden:
        with open(args.golden, "r", encoding="utf-8") as handle:
            expected = handle.read()
        with open(args.trace, "r", encoding="utf-8") as handle:
            actual = handle.read()
        problems = compare_traces(expected, actual)
        if problems:
            print(f"trace {args.trace} DIVERGES from golden {args.golden}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"trace {args.trace} matches golden {args.golden} "
              f"({len(actual.splitlines())} lines, byte-exact)")
        return 0

    print(report(args.trace, load_records(args.trace)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
