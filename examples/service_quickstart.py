#!/usr/bin/env python
"""The live rekeying service in five acts (docs/SERVICE.md).

The same Section-3 protocol the batch examples simulate, here running as
a long-lived service: the key server at the hub of real asyncio streams,
members joining over sockets, rekey intervals announced on a clock, a
quiescent invariant checkpoint, a live Prometheus scrape, and finally a
graceful shutdown whose snapshot a second service resumes from with a
byte-identical key tree.

Run:  python examples/service_quickstart.py
"""

from repro.net import TransitStubParams, TransitStubTopology
from repro.service import RekeyService
from repro.trace import tracing

topology = TransitStubTopology(
    num_hosts=17,
    params=TransitStubParams(
        transit_domains=3, transit_per_domain=3,
        stubs_per_transit=2, stub_size=3,
    ),
    seed=7,
)

with tracing(seed=7):
    print("== act 1: start the service ==")
    service = RekeyService(topology, server_host=0, seed=7)
    service.start()
    wire = "asyncio streams" if service.use_sockets else "in-process fallback"
    print(f"  hub bound on an ephemeral loopback port ({wire})")

    print("== act 2: members join; the interval end rekeys ==")
    for i, host in enumerate((1, 2, 3, 4, 5)):
        service.join(host, delay=1.0 + 300.0 * i)
    service.end_interval(delay=5000.0)
    service.drain()
    members = service.world.active_users()
    print(f"  {len(members)} members, interval {service.world.server.interval},"
          f" {service.transport.frames_sent} frames crossed the wire")

    print("== act 3: quiescent invariant checkpoint ==")
    rounds = service.converge()  # wire arrival can straddle a boundary
    service.checkpoint()
    print(f"  repro.verify audit OK after {rounds} repair round(s) "
          f"({service.checkpoints_passed} passed)")

    print("== act 4: live metrics scrape ==")
    families = [
        line for line in service.scrape_prometheus().splitlines()
        if line.startswith("# TYPE")
    ]
    print(f"  {len(families)} metric families, e.g. {families[0].split()[2]}")

    print("== act 5: graceful shutdown, then resume from the snapshot ==")
    state_before = service.world.server.key_tree_state()
    blob = service.shutdown()
    resumed = RekeyService(topology, server_host=0, seed=7, snapshot=blob)
    identical = resumed.world.server.key_tree_state() == state_before
    print(f"  snapshot {len(blob)} bytes; key tree byte-identical: {identical}")
    resumed.start()
    evicted = resumed.evict_absent_members()
    resumed.join(6, delay=1.0)
    resumed.end_interval(delay=5000.0)
    resumed.drain()
    print(f"  resumed: evicted {evicted} absentees, admitted a new member, "
          f"now at interval {resumed.world.server.interval}")
    resumed.shutdown()
    assert identical
