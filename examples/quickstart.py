#!/usr/bin/env python
"""Quickstart: a secure group in a dozen lines.

Builds a small transit-stub network, starts a key server, admits a few
members (each runs the paper's topology-aware ID assignment), ends a
rekey interval (batch rekeying + T-mesh delivery with rekey message
splitting), and exchanges encrypted application data under the group key.

Run:  python examples/quickstart.py
"""

from repro import SecureGroup, TransitStubParams, TransitStubTopology

# A modest network: 3 transit domains, hosts attach to stub routers.
topology = TransitStubTopology(
    num_hosts=33,
    params=TransitStubParams(
        transit_domains=3,
        transit_per_domain=3,
        stubs_per_transit=2,
        stub_size=6,
    ),
    seed=7,
)

# The key server lives at the last host.
group = SecureGroup(topology, server_host=32, seed=7)

print("== joins ==")
members = [group.join(host) for host in range(8)]
for member in members[:4]:
    print(f"  host {member.host:2d} got user ID {member.user_id}")

report = group.end_interval()
print(f"\n== first rekey interval ==")
print(f"  rekey message: {report.rekey_cost} encryptions")
print(f"  key audit: {'OK' if not group.verify_member_keys() else 'FAILED'}")

print("\n== encrypted group data ==")
alice, bob = members[0], members[1]
blob = alice.seal(b"the launch code is 0000")
print(f"  alice seals {len(blob)} bytes; bob reads: {bob.open(blob)!r}")

print("\n== a member leaves; the group rekeys ==")
mallory = members[2]
group.leave(mallory.user_id)
report = group.end_interval()
print(f"  rekey message: {report.rekey_cost} encryptions")

blob = alice.seal(b"new secret after rekey")
print(f"  bob still reads: {bob.open(blob)!r}")
try:
    mallory.open(blob)
except KeyError as exc:
    print(f"  mallory is locked out: {exc}")
