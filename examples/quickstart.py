#!/usr/bin/env python
"""Quickstart: a secure group in a dozen lines.

Builds a small transit-stub network, starts a key server, admits a few
members (each runs the paper's topology-aware ID assignment), ends a
rekey interval (batch rekeying + T-mesh delivery with rekey message
splitting), and exchanges encrypted application data under the group key.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace           # print trace summary
      python examples/quickstart.py --trace=run.jsonl # write the trace
"""

import argparse
from contextlib import nullcontext

from repro import SecureGroup, TransitStubParams, TransitStubTopology


def run_demo() -> None:
    # A modest network: 3 transit domains, hosts attach to stub routers.
    topology = TransitStubTopology(
        num_hosts=33,
        params=TransitStubParams(
            transit_domains=3,
            transit_per_domain=3,
            stubs_per_transit=2,
            stub_size=6,
        ),
        seed=7,
    )

    # The key server lives at the last host.
    group = SecureGroup(topology, server_host=32, seed=7)

    print("== joins ==")
    members = [group.join(host) for host in range(8)]
    for member in members[:4]:
        print(f"  host {member.host:2d} got user ID {member.user_id}")

    report = group.end_interval()
    print(f"\n== first rekey interval ==")
    print(f"  rekey message: {report.rekey_cost} encryptions")
    print(f"  key audit: {'OK' if not group.verify_member_keys() else 'FAILED'}")

    print("\n== encrypted group data ==")
    alice, bob = members[0], members[1]
    blob = alice.seal(b"the launch code is 0000")
    print(f"  alice seals {len(blob)} bytes; bob reads: {bob.open(blob)!r}")

    print("\n== a member leaves; the group rekeys ==")
    mallory = members[2]
    group.leave(mallory.user_id)
    report = group.end_interval()
    print(f"  rekey message: {report.rekey_cost} encryptions")

    blob = alice.seal(b"new secret after rekey")
    print(f"  bob still reads: {bob.open(blob)!r}")
    try:
        mallory.open(blob)
    except KeyError as exc:
        print(f"  mallory is locked out: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="secure-group quickstart")
    parser.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="capture a structured trace of the demo "
        "(docs/OBSERVABILITY.md); writes JSONL to PATH, or prints a "
        "summary without one",
    )
    args = parser.parse_args(argv)

    if args.trace is None:
        context = nullcontext(None)
    else:
        from repro.trace import tracing

        context = tracing(seed=7, label="quickstart")

    with context as tctx:
        run_demo()

    if tctx is not None:
        print("\n== trace ==")
        print(f"  {tctx.summary()}")
        if args.trace:
            from repro.metrics.export import write_trace_jsonl

            write_trace_jsonl(args.trace, tctx)
            print(f"  wrote {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
