#!/usr/bin/env python
"""The Section-3 protocols running as real messages.

Everything the other examples compute directly happens here on the wire
of a discrete event simulator: joining users determine their IDs with
query/response round trips and RTT pings, the key server completes IDs
and batches membership changes, and at each rekey-interval end a
MembershipUpdate (join records + departures + split rekey encryptions)
is multicast over T-mesh with every forwarder executing FORWARD and
REKEY-MESSAGE-SPLIT itself.

Watch for: per-joiner protocol cost (the paper's O(P·D·N^(1/D)) query
analysis), exactly-once wire delivery, per-user encryption loads, and
1-consistency of the emergent tables after churn.

Run:  python examples/distributed_protocol.py
"""

import numpy as np

from repro.distributed import DistributedGroup
from repro.net import TransitStubParams, TransitStubTopology

RNG = np.random.default_rng(42)

topology = TransitStubTopology(
    num_hosts=49,
    params=TransitStubParams(
        transit_domains=3, transit_per_domain=3,
        stubs_per_transit=2, stub_size=7,
    ),
    seed=12,
)
world = DistributedGroup(topology, server_host=48, seed=12)

print("== interval 0: 16 joins (some heavily concurrent) ==")
t = 1.0
for host in range(16):
    world.schedule_join(host, at=t)
    t += float(RNG.uniform(5.0, 400.0))
world.end_interval(at=t + 2000.0)
world.run()

active = world.active_users()
print(f"  {len(active)} users joined; sim time {world.simulator.now:.0f} ms, "
      f"{world.simulator.events_processed} events")
queries = [u.stats.queries_sent for u in active]
pings = [u.stats.pings_sent for u in active]
print(f"  per-joiner cost: queries median {int(np.median(queries))} "
      f"max {max(queries)}; pings median {int(np.median(pings))}")
problems = world.check_one_consistency()
print(f"  table audit: {'1-consistent' if not problems else problems[:2]}")

print("\n== interval 1: 8 more joins, 4 leaves ==")
t = world.simulator.now + 100.0
for host in range(16, 24):
    world.schedule_join(host, at=t)
    t += float(RNG.uniform(5.0, 150.0))
for host in (2, 5, 9, 11):
    world.schedule_leave_of_host(host, at=t)
    t += 20.0
world.end_interval(at=t + 2000.0)
world.run()

active = world.active_users()
print(f"  {len(active)} users active after churn")
problems = world.check_one_consistency()
print(f"  table audit: {'1-consistent' if not problems else problems[:2]}")

report = world.delivery_report(1)
print(f"  interval-1 multicast: {len(report['received'])} receivers, "
      f"duplicates: {report['duplicates'] or 'none'}")
update = world.intervals[1].update
loads = [
    count
    for uid, count in report["encryptions"].items()
    if uid in {u.user_id for u in active}
]
print(f"  rekey message: {len(update.encryptions)} encryptions total; "
      f"per-user received median {int(np.median(loads))}, max {max(loads)} "
      f"(splitting on the wire)")
print(f"  leavers shipped {len(update.replacements)} replacement records "
      f"for table repair")
