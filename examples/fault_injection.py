#!/usr/bin/env python
"""Fault injection and NACK-repaired rekey delivery.

Theorem 1 promises exactly-once T-mesh delivery — on a perfect network.
This example injects a seeded :class:`repro.faults.FaultPlan` (drops,
duplicates, a crash window) and shows the delivery guarantee degrade,
then come back:

1. clean network — exactly one copy per member, zero repair traffic;
2. 20% packet loss, no repair — whole subtrees go dark;
3. same seeded loss with the NACK-based reliable transport — every
   member recovers every payload, duplicates are suppressed, and the
   repair overhead is accounted for;
4. a crashed forwarder — K=4 tables route around it (Section 2.3);
5. the join protocol under loss — client retries with backoff against
   the idempotent key server.

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro.alm.reliable import ReliabilityConfig, ReliableSession
from repro.core.ids import Id, IdScheme
from repro.core.neighbor_table import (
    UserRecord,
    build_consistent_tables,
    build_server_table,
)
from repro.distributed.harness import DistributedGroup
from repro.faults import FaultPlan
from repro.net.planetlab import MatrixTopology
from repro.net import TransitStubParams, TransitStubTopology

SCHEME = IdScheme(3, 4)
NUM_USERS = 40
PAYLOADS = [f"rekey-{i}" for i in range(8)]


def build_world(seed=0, k=4):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(NUM_USERS + 1, 2))
    matrix = np.sqrt(
        ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    )
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    topology = MatrixTopology(matrix)
    id_tuples = set()
    while len(id_tuples) < NUM_USERS:
        id_tuples.add(tuple(int(rng.integers(0, 4)) for _ in range(3)))
    records = [
        UserRecord(Id(t), host) for host, t in enumerate(sorted(id_tuples))
    ]
    tables = build_consistent_tables(SCHEME, records, topology.rtt, k=k)
    server_table = build_server_table(
        SCHEME, NUM_USERS, records, topology.rtt, k=k
    )
    return topology, tables, server_table


topology, tables, server_table = build_world()
print(f"T-mesh of {NUM_USERS} users, {len(PAYLOADS)} rekey payloads\n")

# --- 1: clean network ---------------------------------------------------
outcome = ReliableSession(tables, server_table, topology).multicast(PAYLOADS)
print(f"clean network : delivery {outcome.delivery_ratio:.1%}, "
      f"{outcome.stats.nacks_sent} NACKs, "
      f"{outcome.stats.retransmissions} retransmissions")

# --- 2: 20% loss, repair off -------------------------------------------
plan = FaultPlan(seed=42).drop(0.20)
outcome = ReliableSession(
    tables, server_table, topology, plan=plan,
    config=ReliabilityConfig(repair_enabled=False),
).multicast(PAYLOADS)
print(f"20% loss, raw : delivery {outcome.delivery_ratio:.1%}, "
      f"{len(outcome.members_short())} members shorted "
      f"({plan.stats.drops} packets dropped)")

# --- 3: 20% loss, NACK repair on ---------------------------------------
plan = FaultPlan(seed=42).drop(0.20).duplicate(0.05)
outcome = ReliableSession(
    tables, server_table, topology, plan=plan
).multicast(PAYLOADS)
print(f"20% + repair  : delivery {outcome.delivery_ratio:.1%}, "
      f"{outcome.duplicates_surfaced} duplicates surfaced, "
      f"{outcome.stats.nacks_sent} NACKs, "
      f"{outcome.stats.retransmissions} retransmissions, "
      f"overhead {outcome.stats.repair_overhead:.2f}x")
assert outcome.delivery_ratio == 1.0

# --- 4: a crashed forwarder --------------------------------------------
victim = server_table.row_primaries(0)[0][1]
plan = FaultPlan(seed=7).drop(0.10).crash(host=victim.host, at=0.0)
outcome = ReliableSession(
    tables, server_table, topology, plan=plan
).multicast(PAYLOADS)
live_short = [u for u in outcome.members_short() if u != victim.user_id]
print(f"crashed hub   : member {victim.user_id} down from t=0; "
      f"{len(live_short)} live members shorted "
      f"(K=4 backups route around it)")
assert live_short == []

# --- 5: the join protocol under loss -----------------------------------
params = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=6
)
wire_topology = TransitStubTopology(num_hosts=25, params=params, seed=3)
plan = FaultPlan(seed=11).drop(0.10)
world = DistributedGroup(wire_topology, server_host=24, fault_plan=plan)
for host in range(10):
    node = world.schedule_join(host, at=10.0 * (host + 1))
    # 10% loss each way means ~19% of request/response round trips fail;
    # the default budget of 3 retries leaves ~0.1% of joins stranded, so
    # give the clients a little more patience for this demonstration.
    node.max_server_retries = 6
world.end_interval(at=2000.0)
world.run()
active = len(world.active_users())
retries = sum(u.stats.server_retries for u in world.users.values())
print(f"\njoin protocol : {active}/10 joins completed under 10% loss "
      f"({retries} server retries, {world.fault_stats.drops} drops injected)")
assert active == 10

# Loss stalls some joins past the interval end (each dropped query costs
# a 5s timeout), so the t=2000 announcement covers only the early
# finishers; a second interval announces the stragglers, and
# reference-[31] recovery rounds resync members whose (lossy)
# announcement copies were dropped.
holes = len(world.check_one_consistency())
world.end_interval(at=world.simulator.now + 100.0)
world.run()
mid = len(world.check_one_consistency())
for r in range(3):
    world.schedule_recovery_round(at=world.simulator.now + 100.0 * (r + 1))
world.run()
recovered = sum(u.stats.recovered_updates for u in world.users.values())
print(f"table audit   : {holes} -> {mid} -> "
      f"{len(world.check_one_consistency())} consistency problems "
      f"(2nd interval, then {recovered} announcements recovered by "
      f"server unicast)")
assert world.check_one_consistency() == []
