#!/usr/bin/env python
"""Concurrent rekey and data transport over one T-mesh overlay.

This example reproduces the paper's core engineering story on a single
group: the same neighbor tables carry (a) a bursty rekey multicast from
the key server and (b) a data multicast from an ordinary member, and the
rekey message splitting scheme keeps the rekey burst from competing with
data for access-link bandwidth.

It prints the Section-4.1 latency metrics for both sessions and the
Fig.-13-style bandwidth numbers with and without splitting.

Run:  python examples/rekey_vs_data_transport.py
"""

import numpy as np

from repro import rekey_session, data_session, run_split_rekey
from repro.core.splitting import run_unsplit_rekey
from repro.experiments.common import build_group, build_topology
from repro.keytree import ModifiedKeyTree
from repro.metrics.latency import tmesh_latency

NUM_USERS = 128
RNG = np.random.default_rng(11)

print(f"building a GT-ITM group of {NUM_USERS} users ...")
topology = build_topology("gtitm", NUM_USERS, seed=5)
group = build_group(topology, NUM_USERS, seed=5)

# Mirror membership into the modified key tree and apply heavy churn.
tree = ModifiedKeyTree(group.scheme)
for uid in group.user_ids:
    tree.request_join(uid)
tree.process_batch()
victims = [
    list(group.user_ids)[int(i)]
    for i in RNG.choice(NUM_USERS, size=NUM_USERS // 4, replace=False)
]
for uid in victims:
    group.leave(uid)
    tree.request_leave(uid)
message = tree.process_batch()
print(f"rekey interval: {len(victims)} leaves -> "
      f"{message.rekey_cost}-encryption rekey message\n")

# ---- rekey transport -------------------------------------------------
session = rekey_session(group.server_table, group.tables, topology)
lat = tmesh_latency(session, topology)
print("rekey transport (key server -> all users):")
print(f"  median app-layer delay : {np.median(lat.app_delay):8.1f} ms")
print(f"  users with RDP < 2     : {np.mean(lat.rdp < 2):8.0%}")
print(f"  95th-pct user stress   : {np.percentile(lat.stress, 95):8.1f}")

# ---- data transport ---------------------------------------------------
sender = next(iter(group.user_ids))
dsession = data_session(sender, group.tables, topology)
dlat = tmesh_latency(dsession, topology)
print(f"\ndata transport (user {sender} -> all users):")
print(f"  median app-layer delay : {np.median(dlat.app_delay):8.1f} ms")
print(f"  users with RDP < 2     : {np.mean(dlat.rdp < 2):8.0%}")

# ---- splitting: why the rekey burst stays cheap -----------------------
split = run_split_rekey(session, message)
flood = run_unsplit_rekey(session, message.rekey_cost)
recv_split = np.array(list(split.received.values()), dtype=float)
recv_flood = np.array(list(flood.received.values()), dtype=float)
print("\nrekey bandwidth per user (encryptions):")
print(f"  {'':22s} {'split':>8s} {'flooded':>9s}")
print(f"  {'median received':22s} {np.median(recv_split):>8.0f} "
      f"{np.median(recv_flood):>9.0f}")
print(f"  {'90th pct received':22s} {np.percentile(recv_split, 90):>8.0f} "
      f"{np.percentile(recv_flood, 90):>9.0f}")
print(f"  {'max received':22s} {recv_split.max():>8.0f} "
      f"{recv_flood.max():>9.0f}")
saving = 1 - recv_split.sum() / recv_flood.sum()
print(f"\nsplitting removed {saving:.0%} of the rekey bytes from user "
      f"access links,\nleaving that bandwidth to the data stream.")
