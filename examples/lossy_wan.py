#!/usr/bin/env python
"""Rekeying over a lossy WAN: FEC + limited unicast recovery.

Rekey messages are bursty and must be delivered fast and reliably
(Section 1).  This example pushes a secure group through rekey intervals
while the network drops packets, comparing three reliability stances:

1. nothing — lost packets mean lost keys; members silently fall out of
   sync until they try to read data and fail;
2. proactive XOR-parity FEC (the ToN'03 mechanism) — single losses per
   block repair locally, no round trips;
3. FEC + limited unicast recovery (reference [31]) — whoever is still
   incomplete asks the key server for its key path.

Run:  python examples/lossy_wan.py
"""

import numpy as np

from repro import SecureGroup, TransitStubParams, TransitStubTopology
from repro.keytree.recovery import FecEncoder

PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=4, stubs_per_transit=2, stub_size=7
)
NUM_USERS = 60
LOSS_RATE = 0.10


def fresh_group(seed):
    topology = TransitStubTopology(
        num_hosts=NUM_USERS + 1, params=PARAMS, seed=seed
    )
    group = SecureGroup(topology, server_host=NUM_USERS, seed=seed)
    members = [group.join(h) for h in range(NUM_USERS)]
    group.end_interval()
    # churn so the measured interval carries a real rekey message
    for member in members[: NUM_USERS // 5]:
        group.leave(member.user_id)
    return group


print(f"secure group of {NUM_USERS}, {LOSS_RATE:.0%} packet loss on rekey "
      f"delivery\n")

# --- stance 1: no protection -------------------------------------------
group = fresh_group(31)
report = group.end_interval(
    loss_rate=LOSS_RATE, loss_rng=np.random.default_rng(1)
)
print(f"no protection : {len(report.incomplete):2d} members missing keys "
      f"after the interval")
speaker_id = next(uid for uid in group.members if uid not in report.incomplete)
blob = group.members[speaker_id].seal(b"can you hear me?")
deaf = 0
for member in group.members.values():
    try:
        member.open(blob)
    except KeyError:
        deaf += 1
print(f"                {deaf} of them cannot decrypt the current stream")

# --- stance 2: FEC -------------------------------------------------------
group = fresh_group(31)
report = group.end_interval(
    loss_rate=LOSS_RATE,
    fec=FecEncoder(packet_size=2, block_packets=4),
    loss_rng=np.random.default_rng(1),
)
print(f"\nwith FEC      : {len(report.incomplete):2d} members missing keys "
      f"({report.fec_repaired_blocks} blocks repaired locally, "
      f"{FecEncoder(block_packets=4).overhead_ratio():.0%} parity overhead)")

# --- stance 3: FEC + unicast recovery ------------------------------------
for user_id in report.incomplete:
    group.recover_member(user_id)
audit = group.verify_member_keys()
print(f"+ recovery    : {len(report.incomplete)} unicast key-path grants; "
      f"audit {'OK' if not audit else 'FAILED'}")

blob = next(iter(group.members.values())).seal(b"loud and clear")
readers = sum(
    1 for m in group.members.values() if m.open(blob) == b"loud and clear"
)
print(f"\nafter recovery, {readers}/{len(group.members)} members decrypt "
      f"the stream.")
