#!/usr/bin/env python
"""Prefix routing and per-group trees over the same neighbor tables.

The neighbor tables that embed the paper's multicast trees also support
classic hypercube prefix routing (the PRR/Pastry lineage the paper cites
in Section 2.2).  This example routes between members, builds a
Scribe-style per-group tree on the routing substrate (the related-work
design of Section 5), and contrasts its shape with the paper's T-mesh —
then exports both delivery trees as Graphviz DOT files.

Run:  python examples/overlay_routing.py
"""

import numpy as np

from repro import Id, rekey_session, route_toward
from repro.alm.scribe import build_scribe_group, scribe_multicast
from repro.experiments.common import build_group, build_topology, server_host_of
from repro.metrics.latency import alm_latency, tmesh_latency
from repro.net.analysis import (
    alm_tree_to_networkx,
    export_dot,
    tmesh_tree_to_networkx,
    tree_stats,
)

NUM_USERS = 64

topology = build_topology("gtitm", NUM_USERS, seed=33)
group = build_group(topology, NUM_USERS, seed=33)
server = server_host_of(topology)
ids = sorted(group.user_ids)

print("== hypercube prefix routing over the neighbor tables ==")
src, dst = ids[0], ids[-1]
route = route_toward(group.records[src], dst, group.tables)
hops = " -> ".join(str(h.user_id) for h in route.hops)
print(f"  {src} to {dst}: {route.num_hops} hops")
print(f"  path: {hops}")
print(f"  overlay delay {route.total_delay(topology):.1f} ms vs direct "
      f"{topology.one_way_delay(group.records[src].host, group.records[dst].host):.1f} ms")

print("\n== a Scribe-style group tree on the same substrate ==")
scribe = build_scribe_group(Id([200, 100, 50, 25, 12]), group.tables)
print(f"  rendezvous root: {scribe.root}")
s_session = scribe_multicast(scribe, topology, server_host=server)
s_lat = alm_latency(s_session, topology)
s_tree = alm_tree_to_networkx(s_session)
print(f"  tree: {tree_stats(s_tree).render()}")
print(f"  median RDP {np.median(s_lat.rdp):.2f}, "
      f"max user stress {s_lat.stress.max():.0f}")

print("\n== the paper's T-mesh on the same tables ==")
t_session = rekey_session(group.server_table, group.tables, topology)
t_lat = tmesh_latency(t_session, topology)
t_tree = tmesh_tree_to_networkx(t_session)
print(f"  tree: {tree_stats(t_tree).render()}")
print(f"  median RDP {np.median(t_lat.rdp):.2f}, "
      f"max user stress {t_lat.stress.max():.0f}")

import os
import tempfile

out_dir = tempfile.mkdtemp(prefix="repro-trees-")
t_path = os.path.join(out_dir, "tmesh_tree.dot")
s_path = os.path.join(out_dir, "scribe_tree.dot")
export_dot(t_tree, t_path)
export_dot(s_tree, s_path)
print(f"\nwrote {t_path} and {s_path}")
print("(render with: dot -Tpng tmesh_tree.dot -o tmesh.png)")
print("\nT-mesh spreads forwarding across region heads; the per-group "
      "tree funnels\neverything through one rendezvous — the contrast "
      "behind Section 2.6's argument.")
