#!/usr/bin/env python
"""Secure teleconference with churn — the paper's motivating workload.

Simulates a pay-per-view-style session on a PlanetLab-like topology:
attendees stream in over several rekey intervals, some walk out, and in
every interval the speaker multicasts encrypted audio "frames" to the
current audience.  The example verifies, interval by interval, that

* everyone currently admitted can decrypt the stream,
* everyone who left can decrypt nothing sealed after their departure, and
* rekey bandwidth stays tiny thanks to the splitting scheme (the report
  prints how many encryptions each member actually received vs the full
  rekey message size).

Run:  python examples/secure_conferencing.py
"""

import numpy as np

from repro import PlanetLabTopology, SecureGroup

RNG = np.random.default_rng(2026)
NUM_HOSTS = 81  # 80 potential attendees + the key server
INTERVALS = 6

topology = PlanetLabTopology(num_hosts=NUM_HOSTS, seed=3)
group = SecureGroup(topology, server_host=NUM_HOSTS - 1, seed=3)

attendees = {}
departed = {}
next_host = 0

print(f"{'interval':>8s} {'joins':>6s} {'leaves':>7s} {'size':>5s} "
      f"{'rekey cost':>11s} {'mean recv':>10s} {'max recv':>9s}")

for interval in range(INTERVALS):
    # Churn: a burst of joins early on, leaves later.
    n_joins = int(RNG.integers(5, 15)) if next_host < 70 else 0
    for _ in range(n_joins):
        member = group.join(next_host)
        attendees[member.user_id] = member
        next_host += 1
    n_leaves = int(RNG.integers(0, max(1, len(attendees) // 4)))
    for _ in range(n_leaves):
        uid = list(attendees)[int(RNG.integers(0, len(attendees)))]
        departed[uid] = attendees.pop(uid)
        group.leave(uid)

    report = group.end_interval()
    received = list(report.delivered_encryptions.values()) or [0]
    print(
        f"{interval:>8d} {n_joins:>6d} {n_leaves:>7d} {len(attendees):>5d} "
        f"{report.rekey_cost:>11d} {np.mean(received):>10.1f} "
        f"{max(received):>9d}"
    )

    # The speaker (earliest attendee) multicasts an encrypted frame.
    if len(attendees) >= 2:
        speaker = next(iter(attendees.values()))
        frame = speaker.seal(f"audio frame @ interval {interval}".encode())
        for member in attendees.values():
            assert member.open(frame).endswith(str(interval).encode())
        for old in departed.values():
            try:
                old.open(frame)
                raise AssertionError("forward secrecy violated!")
            except KeyError:
                pass

    audit = group.verify_member_keys()
    assert audit == [], audit

print(f"\nfinal audience: {len(attendees)} members, "
      f"{len(departed)} departed and provably locked out")
print("every interval: audience decrypted the stream; leavers could not.")
