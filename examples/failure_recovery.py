#!/usr/bin/env python
"""Failure recovery: why neighbor tables keep K > 1 neighbors per entry.

Section 2.3: "T-mesh also provides fast failure recovery ... if K > 1.
Once a member detects the failure of a next hop, it can simply forward
messages to another neighbor in the same table entry."

This example crashes a batch of users *silently* (no leave protocol), so
the remaining members' tables still contain stale records.  A rekey
multicast then loses the subtrees rooted at dead primaries.  After the
repair sweep (each member detects failures by missed pings and re-fills
entries from the same ID subtree — possible only because K-consistent
entries hold backups), delivery is complete again.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro import rekey_session
from repro.experiments.common import build_group, build_topology

NUM_USERS = 96
FAILURES = 12
RNG = np.random.default_rng(23)

topology = build_topology("gtitm", NUM_USERS, seed=9)
group = build_group(topology, NUM_USERS, seed=9, k=4)
print(f"group of {group.num_users} users, K = {group.k}")

session = rekey_session(group.server_table, group.tables, topology)
print(f"\nbefore failures: {len(session.receipts)}/{group.num_users} "
      f"users received the rekey message")

# --- silent crashes ----------------------------------------------------
victims = [
    list(group.user_ids)[int(i)]
    for i in RNG.choice(group.num_users, size=FAILURES, replace=False)
]
for uid in victims:
    group.fail(uid)
print(f"\n{FAILURES} users crash silently (stale records remain in tables)")

session = rekey_session(group.server_table, group.tables, topology)
alive = set(group.user_ids)
delivered = set(session.receipts) & alive
lost = alive - delivered
print(f"multicast with stale tables: {len(delivered)}/{len(alive)} alive "
      f"users reached; {len(lost)} cut off behind dead forwarders")

# --- detection and repair ----------------------------------------------
removed = group.repair_tables()
print(f"\nrepair sweep: {removed} stale records dropped, entries re-filled "
      f"from the same ID subtrees (backups exist because K > 1)")

session = rekey_session(group.server_table, group.tables, topology)
delivered = set(session.receipts) & alive
print(f"multicast after repair: {len(delivered)}/{len(alive)} alive users "
      f"reached, {sum(session.duplicate_copies.values())} duplicates")
assert delivered == alive
print("\nfull delivery restored.")
