"""Ablation — encryption-level vs packet-level rekey message splitting.

Section 2.5: "An alternative way is to split and re-compose the rekey
message at packet level, instead of encryption level.  In this case, the
rekey bandwidth overhead would be larger."  This benchmark quantifies the
gap for several packet sizes.
"""

import numpy as np

from repro.core.splitting import run_packet_split_rekey, run_split_rekey
from repro.core.tmesh import rekey_session
from repro.experiments.common import build_group, build_topology
from repro.keytree.modified_tree import ModifiedKeyTree

from .conftest import record, run_once

PACKET_SIZES = (4, 16, 64)


def _run(num_users: int, seed: int):
    topology = build_topology("gtitm", num_users, seed)
    group = build_group(topology, num_users, seed)
    tree = ModifiedKeyTree(group.scheme)
    for uid in group.user_ids:
        tree.request_join(uid)
    tree.process_batch()
    rng = np.random.default_rng(seed)
    victims = [
        list(group.user_ids)[int(i)]
        for i in rng.choice(num_users, size=num_users // 4, replace=False)
    ]
    for uid in victims:
        group.leave(uid)
        tree.request_leave(uid)
    message = tree.process_batch()
    session = rekey_session(group.server_table, group.tables, topology)

    per_enc = run_split_rekey(session, message)
    rows = {"encryption-level": float(np.mean(list(per_enc.received.values())))}
    for size in PACKET_SIZES:
        packet = run_packet_split_rekey(session, message, packet_size=size)
        rows[f"packet-level (S={size})"] = float(
            np.mean(list(packet.received.values()))
        )
    return message.rekey_cost, rows


def test_packet_split_costs_more(benchmark, scale):
    cost, rows = run_once(benchmark, _run, scale.gtitm_users_small, 16)
    lines = [
        f"Ablation — splitting granularity (message = {cost} encryptions)",
        f"{'granularity':26s} {'mean received/user':>20s}",
    ]
    for name, value in rows.items():
        lines.append(f"{name:26s} {value:>20.1f}")
    record(benchmark, "\n".join(lines))
    base = rows["encryption-level"]
    previous = base
    for size in PACKET_SIZES:
        current = rows[f"packet-level (S={size})"]
        assert current >= base  # packets never beat per-encryption
        assert current >= previous - 1e-9  # and degrade with packet size
        previous = current
