"""Fig. 7 — rekey path latency on the GT-ITM topology, 256 user joins.

Paper: the relative performance of T-mesh to NICE has no significant
change when the simulation topology changes from PlanetLab to GT-ITM.
"""

from repro.experiments.latency_experiments import run_latency_experiment

from .conftest import record, run_once


def test_fig7_rekey_latency_gtitm_256(benchmark, scale):
    cmp = run_once(
        benchmark,
        run_latency_experiment,
        "Fig 7",
        "gtitm",
        scale.gtitm_users_small,
        mode="rekey",
        runs=max(1, scale.latency_runs // 2),
        seed=7,
    )
    record(benchmark, cmp.render(), **cmp.headlines())
    h = cmp.headlines()
    assert h["tmesh_median_delay_ms"] < h["nice_median_delay_ms"]
    assert h["tmesh_rdp_lt2"] > h["nice_rdp_lt2"]
