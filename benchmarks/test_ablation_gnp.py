"""Ablation — GNP-coordinate ID assignment vs direct measurement.

Section 5: "[GNP] can be used in our system to reduce the probing cost of
each joining user ... the key server ... can determine the ID for a
joining user by centralized computing."  This benchmark implements that
suggestion and quantifies the trade: a joiner probes only the L landmarks
(instead of pinging every collected candidate), at some cost in ID
quality — measured as the T-mesh RDP the resulting overlay delivers.
"""

import numpy as np

from repro import PAPER_SCHEME
from repro.core.neighbor_table import (
    UserRecord,
    build_consistent_tables,
    build_server_table,
)
from repro.core.tmesh import rekey_session
from repro.experiments.common import CentralizedController, build_topology
from repro.metrics.latency import tmesh_latency
from repro.net.gnp import GnpEstimatedTopology, fit_gnp

from .conftest import record, run_once


def _assign_and_measure(assignment_topology, real_topology, num_users, seed):
    """Assign IDs over ``assignment_topology`` (real or GNP estimates),
    then evaluate the overlay on the *real* topology."""
    controller = CentralizedController(PAPER_SCHEME, assignment_topology, seed)
    records = []
    for host in range(num_users):
        uid = controller.join(host)
        records.append(
            UserRecord(uid, host, real_topology.access_rtt(host))
        )
    tables = build_consistent_tables(
        PAPER_SCHEME, records, real_topology.rtt, k=4
    )
    server_table = build_server_table(
        PAPER_SCHEME, num_users, records, real_topology.rtt, k=4
    )
    session = rekey_session(server_table, tables, real_topology)
    latency = tmesh_latency(session, real_topology)
    return {
        "median_rdp": float(np.median(latency.rdp)),
        "rdp_lt2": float(np.mean(latency.rdp < 2)),
        "median_delay": float(np.median(latency.app_delay)),
    }


def test_gnp_assignment_tradeoff(benchmark, scale):
    n = scale.planetlab_users

    def run_both():
        topology = build_topology("planetlab", n, seed=17)
        model = fit_gnp(topology, num_landmarks=15, dim=6, seed=17)
        gnp_view = GnpEstimatedTopology(topology, model)
        return (
            _assign_and_measure(topology, topology, n, 17),
            _assign_and_measure(gnp_view, topology, n, 17),
            model.probes_per_host,
        )

    measured, gnp, probes = run_once(benchmark, run_both)
    rendered = (
        f"Ablation — GNP coordinates vs direct measurement "
        f"(PlanetLab, {n} users)\n"
        f"{'metric':28s} {'measured':>10s} {'GNP':>10s}\n"
        f"{'probes per joiner':28s} {'O(P*D*N^1/D)':>10s} {probes:>10d}\n"
        f"{'median RDP':28s} {measured['median_rdp']:>10.2f} "
        f"{gnp['median_rdp']:>10.2f}\n"
        f"{'users with RDP < 2':28s} {measured['rdp_lt2']:>9.0%} "
        f"{gnp['rdp_lt2']:>9.0%}\n"
        f"{'median app delay (ms)':28s} {measured['median_delay']:>10.1f} "
        f"{gnp['median_delay']:>10.1f}"
    )
    record(benchmark, rendered)
    # GNP trades a bounded amount of latency quality for O(L) probing.
    assert gnp["median_rdp"] <= measured["median_rdp"] * 1.6 + 0.5
    assert gnp["rdp_lt2"] >= measured["rdp_lt2"] * 0.6
