"""Overhead guard for the tracing hooks (docs/OBSERVABILITY.md).

Two contracts:

* **off = free** — with no :class:`~repro.trace.TraceContext` installed,
  the instrumented ``rekey_session`` at the paper's headline 1024 users
  must stay within the ordinary perf-regression envelope of the ``post``
  medians committed in ``BENCH_PR2.json``: the hooks are a single
  module-slot read per session, so disabling tracing costs nothing
  measurable.
* **on = bounded** — with tracing installed (hop spans and histograms
  included, the worst case) the same workload must stay within a
  documented multiple of its untraced time, measured back-to-back in
  this process so machine speed cancels out.

Methodology matches ``benchmarks/test_perf_regression.py``: best-of-N
minima, the calibration-based machine scale, and the
``REPRO_BENCH_TOLERANCE`` knob.  The enabled-path bound has its own knob,
``REPRO_TRACE_OVERHEAD`` (default 2.5x), because span construction is
real work — the bound documents it instead of pretending it away.

Run with the bench lane::

    PYTHONPATH=src pytest benchmarks/test_trace_overhead.py -m bench
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.perf.workloads import WORKLOADS, calibrate, measure
from repro.trace import TraceContext, hooks, tracing

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.75"))
#: Allowed slowdown of rekey@1024 with full tracing (hop spans +
#: histograms) vs untraced, measured back to back.  Documented in
#: docs/OBSERVABILITY.md; loose because span dicts for 1024 receipts are
#: genuine allocation work.
TRACE_OVERHEAD = float(os.environ.get("REPRO_TRACE_OVERHEAD", "2.5"))

WORKLOAD = WORKLOADS["rekey_session_1024"]


def _committed():
    if not BENCH_FILE.exists():
        pytest.skip(f"{BENCH_FILE.name} not committed; run tools/perf_baseline.py")
    return json.loads(BENCH_FILE.read_text())


@pytest.fixture(scope="module")
def rekey_fn():
    fn = WORKLOAD.setup({})
    fn()  # warm caches the way the baseline driver does
    return fn


@pytest.fixture(scope="module")
def machine_scale():
    committed = _committed()
    reference = committed.get("calibration")
    if not reference:
        return 1.0
    now = calibrate()
    return max(1.0, now["median_ms"] / reference["median_ms"])


def test_tracing_off_is_free(rekey_fn, machine_scale):
    """With the slot empty, instrumented rekey@1024 stays within the
    committed perf envelope — the observability layer costs nothing when
    off."""
    assert hooks.ACTIVE is None  # the contract under test
    entry = _committed()["ops"]["rekey_session_1024"]
    committed_ms = entry["post"]["median_ms"]
    now_ms = measure(rekey_fn, WORKLOAD.repeats)["min_ms"]
    limit = committed_ms * machine_scale * (1.0 + TOLERANCE)
    assert now_ms <= limit, (
        f"rekey@1024 with tracing hooks compiled in but OFF took "
        f"{now_ms:.3f} ms best-of-{WORKLOAD.repeats} vs committed median "
        f"{committed_ms:.3f} ms (machine scale {machine_scale:.2f}, "
        f"+{TOLERANCE:.0%} = {limit:.3f} ms): the disabled hook path "
        f"must stay a single slot read per session"
    )


def test_tracing_on_within_documented_bound(rekey_fn):
    """Full tracing (hop spans + delay histograms for 1024 members)
    slows rekey@1024 by at most REPRO_TRACE_OVERHEAD x, measured back to
    back so the machine cancels out."""
    off_ms = measure(rekey_fn, WORKLOAD.repeats)["min_ms"]
    with tracing(seed=0, label="overhead"):
        on_ms = measure(rekey_fn, WORKLOAD.repeats)["min_ms"]
    assert on_ms <= off_ms * TRACE_OVERHEAD, (
        f"traced rekey@1024 took {on_ms:.3f} ms vs {off_ms:.3f} ms "
        f"untraced ({on_ms / off_ms:.2f}x > allowed {TRACE_OVERHEAD:.2f}x); "
        f"either trim the hot observation path or raise the documented "
        f"bound (REPRO_TRACE_OVERHEAD / docs/OBSERVABILITY.md)"
    )


def test_hops_off_mode_cheaper_than_full(rekey_fn):
    """``hops=False`` (counters only) must not be slower than full
    tracing — it exists so very large sessions can keep the counters and
    skip the per-receipt span allocation."""
    previous = hooks.ACTIVE
    assert previous is None
    hooks.ACTIVE = TraceContext(hops=False)
    try:
        lean_ms = measure(rekey_fn, WORKLOAD.repeats)["min_ms"]
    finally:
        hooks.ACTIVE = previous
    with tracing(seed=0):
        full_ms = measure(rekey_fn, WORKLOAD.repeats)["min_ms"]
    # Generous slack: both are fast, and the claim is only "not slower".
    assert lean_ms <= full_ms * 1.25, (
        f"hops=False ({lean_ms:.3f} ms) slower than full tracing "
        f"({full_ms:.3f} ms)"
    )
