"""Ablation — random (Pastry/Tapestry-style) IDs vs topology-aware IDs.

Section 2.6 argues the splitting scheme's efficiency depends on the
topology-aware ID assignment: with random IDs, users sharing an
encryption sit at random positions in the ID tree, so shared encryptions
are duplicated early and the same encryption crosses wide-area links many
times; RDP also degrades because multicast subtrees no longer map to
topological regions.

Both arms use the same ``D=5, B=4`` ID space (dense enough that prefix
sharing occurs either way) and are compared on *normalized* metrics —
physical-link crossings per encryption, and RDP — so the comparison is
independent of rekey-message size.
"""

import numpy as np

from repro.core.ids import IdScheme
from repro.core.splitting import run_split_rekey
from repro.core.tmesh import rekey_session
from repro.experiments.common import build_group, build_topology
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.metrics.latency import tmesh_latency

from .conftest import record, run_once

SCHEME = IdScheme(num_digits=5, base=4)
THRESHOLDS = (150.0, 30.0, 9.0, 3.0)


def _build(random_ids: bool, num_users: int, seed: int):
    topology = build_topology("gtitm", num_users, seed)
    group = build_group(
        topology,
        num_users,
        seed,
        scheme=SCHEME,
        thresholds=THRESHOLDS,
        random_ids=random_ids,
    )
    tree = ModifiedKeyTree(SCHEME)
    for uid in group.user_ids:
        tree.request_join(uid)
    tree.process_batch()
    rng = np.random.default_rng(seed)
    victims = [
        list(group.user_ids)[int(i)]
        for i in rng.choice(num_users, size=num_users // 4, replace=False)
    ]
    for uid in victims:
        group.leave(uid)
        tree.request_leave(uid)
    message = tree.process_batch()
    session = rekey_session(group.server_table, group.tables, topology)
    split = run_split_rekey(session, message)
    latency = tmesh_latency(session, topology)
    link_hops = split.link_counts(topology).counts.sum()
    return {
        "message_size": message.rekey_cost,
        "median_rdp": float(np.median(latency.rdp)),
        "link_hops_per_encryption": float(link_hops / max(1, message.rekey_cost)),
    }


def test_topology_aware_ids_beat_random_ids(benchmark, scale):
    n = scale.gtitm_users_small

    def run_both():
        return _build(False, n, 15), _build(True, n, 15)

    aware, random_ids = run_once(benchmark, run_both)
    rendered = (
        "Ablation — topology-aware vs random IDs "
        f"(GT-ITM, {n} users, 25% leave, D=5 B=4)\n"
        f"{'metric':34s} {'aware':>12s} {'random':>12s}\n"
        f"{'rekey message size':34s} {aware['message_size']:>12d} "
        f"{random_ids['message_size']:>12d}\n"
        f"{'median RDP':34s} {aware['median_rdp']:>12.2f} "
        f"{random_ids['median_rdp']:>12.2f}\n"
        f"{'link crossings per encryption':34s} "
        f"{aware['link_hops_per_encryption']:>12.1f} "
        f"{random_ids['link_hops_per_encryption']:>12.1f}"
    )
    record(benchmark, rendered)
    # Section 2.6's claim, quantified: with random IDs each encryption is
    # carried across clearly more physical links, and RDP is no better.
    assert (
        aware["link_hops_per_encryption"]
        < random_ids["link_hops_per_encryption"]
    )
    assert aware["median_rdp"] <= random_ids["median_rdp"] * 1.10
