"""Fig. 13 — rekey bandwidth overhead under the seven Table-2 protocols.

Paper (GT-ITM, 1024 users, 256 joins + 256 leaves in one interval):

* splitting is very effective: comparing P0'->P1', P1->P2, P3->P4, more
  than 90% of users and links drop from several thousand encryptions to
  fewer than ten (T-mesh protocols);
* in T-mesh (P2/P4) no user receives or forwards more than ~350
  encryptions and only a few key-server-adjacent links carry up to ~1500;
* with NICE (P1'), a few users near the root still forward 1000-10000
  encryptions and some links carry up to ~4000.
"""

from repro.experiments.bandwidth_experiment import run_bandwidth_experiment

from .conftest import record, run_once


def test_fig13_bandwidth(benchmark, scale):
    exp = run_once(
        benchmark,
        run_bandwidth_experiment,
        num_users=scale.gtitm_users_large,
        churn=scale.bandwidth_churn,
        seed=13,
    )
    record(benchmark, exp.render())
    r = exp.results

    # splitting slashes the per-user maxima for every pair
    assert r["P2"].max_forwarded() < r["P1"].max_forwarded()
    assert r["P4"].max_forwarded() < r["P3"].max_forwarded()
    assert r["P1'"].max_forwarded() < r["P0'"].max_forwarded()

    # most users end up under 10 encryptions with T-mesh splitting
    assert r["P2"].fraction_users_below(10) > 0.5
    assert r["P4"].fraction_users_below(10) > 0.5
    # ...which no unsplit protocol achieves
    assert r["P1"].fraction_users_below(10) < 0.1
    assert r["P0'"].fraction_users_below(10) < 0.1

    # T-mesh splitting beats NICE splitting at the hot spots
    assert r["P2"].max_forwarded() <= r["P1'"].max_forwarded()

    # links: splitting reduces the worst-loaded link
    assert r["P2"].max_link() < r["P1"].max_link()
