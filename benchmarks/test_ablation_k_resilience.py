"""Ablation — table redundancy K vs failure resilience.

Section 2.3: with K > 1, a member that detects a failed next hop simply
forwards to another neighbor in the same entry.  This benchmark crashes a
fraction of the group *silently* (stale records still in tables) and
measures what fraction of the surviving users a rekey multicast still
reaches, for K = 1, 2, 4, with the backup-failover rule enabled.
"""

import numpy as np

from repro.core.ids import IdScheme
from repro.core.tmesh import run_multicast
from repro.experiments.common import build_group, build_topology

from .conftest import record, run_once

K_VALUES = (1, 2, 4)
FAIL_FRACTION = 0.15

# A dense ID space (B=4) so multicast subtrees hold many users and a
# failed forwarder actually has downstream users to cut off.
SCHEME = IdScheme(num_digits=5, base=4)


def _coverage(k: int, num_users: int, seed: int) -> float:
    topology = build_topology("gtitm", num_users, seed)
    group = build_group(
        topology,
        num_users,
        seed,
        scheme=SCHEME,
        thresholds=(150.0, 30.0, 9.0, 3.0),
        k=k,
    )
    rng = np.random.default_rng(seed)
    n_fail = int(num_users * FAIL_FRACTION)
    victims = [
        list(group.user_ids)[int(i)]
        for i in rng.choice(num_users, size=n_fail, replace=False)
    ]
    failed_hosts = {group.records[uid].host for uid in victims}
    alive = set(group.user_ids) - set(victims)
    session = run_multicast(
        group.server_table,
        group.tables,
        topology,
        failed_hosts=failed_hosts,
        use_backups=True,
    )
    return len(set(session.receipts) & alive) / len(alive)


def test_higher_k_masks_more_failures(benchmark, scale):
    n = scale.gtitm_users_small

    def sweep():
        return {k: _coverage(k, n, seed=19) for k in K_VALUES}

    coverage = run_once(benchmark, sweep)
    lines = [
        f"Ablation — K vs delivery coverage under {FAIL_FRACTION:.0%} "
        f"silent failures (GT-ITM, {n} users)",
        f"{'K':>3s} {'alive users reached':>20s}",
    ]
    for k in K_VALUES:
        lines.append(f"{k:>3d} {coverage[k]:>19.0%}")
    record(benchmark, "\n".join(lines))
    # more backups, more coverage; K=4 should mask nearly everything
    assert coverage[1] <= coverage[2] + 0.02
    assert coverage[2] <= coverage[4] + 0.02
    assert coverage[4] > 0.95
