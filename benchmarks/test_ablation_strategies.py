"""Ablation — rekey message composition strategies (WGL).

The system is group-oriented: one rekey message, each encryption once,
pruned per hop by the splitting scheme.  The classical alternative that
needs no splitting machinery — user-oriented composition — re-encrypts
every shared key once per user.  This benchmark compares the server-side
encryption counts of the three WGL strategies on the same batch, showing
why group-oriented + splitting is the right baseline to optimize.
"""

import numpy as np

from repro.core.ids import IdScheme
from repro.experiments.common import CentralizedController, build_topology
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.keytree.strategies import modified_tree_strategy_costs

from .conftest import record, run_once


def _run(num_users: int, seed: int):
    topology = build_topology("gtitm", num_users, seed)
    controller = CentralizedController(
        IdScheme(5, 256), topology, seed
    )
    rng = np.random.default_rng(seed)
    ids = [controller.join(int(h)) for h in range(num_users)]
    tree = ModifiedKeyTree(controller.scheme)
    for uid in ids:
        tree.request_join(uid)
    tree.process_batch()
    victims = [
        ids[int(i)]
        for i in rng.choice(num_users, size=num_users // 4, replace=False)
    ]
    for uid in victims:
        tree.request_leave(uid)
    message = tree.process_batch()
    remaining = [u for u in ids if u not in set(victims)]
    return message.rekey_cost, modified_tree_strategy_costs(message, remaining)


def test_group_oriented_minimizes_server_encryptions(benchmark, scale):
    n = scale.gtitm_users_small
    cost, strategies = run_once(benchmark, _run, n, 23)
    lines = [
        f"Ablation — WGL composition strategies "
        f"(modified tree, {n} users, 25% leave)",
        f"{'strategy':16s} {'messages':>9s} {'encryptions':>12s}",
    ]
    for name in ("group-oriented", "key-oriented", "user-oriented"):
        s = strategies[name]
        lines.append(f"{name:16s} {s.messages:>9d} {s.encryptions:>12d}")
    record(benchmark, "\n".join(lines))
    assert strategies["group-oriented"].encryptions == cost
    assert strategies["key-oriented"].encryptions == cost
    assert strategies["user-oriented"].encryptions > cost
