"""Bench-lane guard: the numpy compute backend must stay fast.

The point of :mod:`repro.compute.numpy_backend` is speed — bitwise
equivalence is enforced elsewhere (``tests/test_compute_backends.py``).
This lane asserts the speed is real, on the canonical 1024-member rekey
workload, measured back to back in the same process so both sides see
the same machine regime:

* the session call itself (the operation ``rekey_session_1024`` in
  ``BENCH_PR2.json``/``BENCH_PR7.json`` times: the vectorized kernel
  runs eagerly, Receipt/edge objects stay lazy) must be at least
  ``MIN_KERNEL_SPEEDUP``x faster than the reference backend.  PR 7
  measured ~48x here; the 2x floor catches a backend that silently
  stopped vectorizing (e.g. a precondition check routing every session
  down the reference fallback) without flaking on ambient noise.
* the fully *materialized* session (receipts read back) must still win
  by ``MIN_MATERIALIZED_SPEEDUP``x.  Both backends build the same ~2k
  NamedTuples there, so the ceiling is Amdahl-bound (~1.9x measured);
  this floor catches regressions in the lazy-materialization path.

Skips (never fails) when numpy is not installed — the ``fast`` extra is
optional by design.

Run with the bench lane::

    PYTHONPATH=src pytest benchmarks/test_compute_speedup.py -m bench
"""

from __future__ import annotations

import pytest

from repro.compute import ComputeUnavailable, create_backend
from repro.perf.workloads import measure

#: Required numpy-over-reference ratio of best-of-N session-call times
#: (the committed workload's operation).  Deliberately far below the
#: measured ~48x: this guards "the vectorized path stopped engaging",
#: not single-digit drift.
MIN_KERNEL_SPEEDUP = 2.0

#: Required ratio with materialization included.  Object construction
#: dominates both backends there (measured ~1.9x), so the floor is low;
#: dropping under it means the lazy path or the array-reorder
#: materialization regressed.
MIN_MATERIALIZED_SPEEDUP = 1.2

REPEATS = 9


@pytest.fixture(scope="module")
def numpy_backend():
    try:
        return create_backend("numpy")
    except ComputeUnavailable:
        pytest.skip("fast extra not installed; numpy backend unavailable")


@pytest.fixture(scope="module")
def world_1024():
    from repro.experiments.common import build_group, build_topology

    topology = build_topology("gtitm", 1024, seed=20)
    return topology, build_group(topology, 1024, seed=20)


def test_numpy_kernel_at_least_2x_reference_at_1024(numpy_backend, world_1024):
    from repro.core.tmesh import rekey_session

    topology, group = world_1024

    def run(compute):
        return rekey_session(
            group.server_table, group.tables, topology, compute=compute
        )

    run(numpy_backend).receipts  # prime the one-time structure compile
    vec = measure(lambda: run(numpy_backend), REPEATS)
    ref = measure(lambda: run("reference"), REPEATS)
    speedup = ref["min_ms"] / vec["min_ms"]
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"numpy backend only {speedup:.2f}x reference at 1024 members "
        f"(reference {ref['min_ms']:.3f} ms vs numpy {vec['min_ms']:.3f} ms); "
        "is the vectorized path falling back to reference?"
    )


def test_numpy_materialized_still_wins_at_1024(numpy_backend, world_1024):
    from repro.core.tmesh import rekey_session

    topology, group = world_1024

    def run(compute):
        session = rekey_session(
            group.server_table, group.tables, topology, compute=compute
        )
        return session.receipts  # force full materialization

    run(numpy_backend)
    vec = measure(lambda: run(numpy_backend), REPEATS)
    ref = measure(lambda: run("reference"), REPEATS)
    speedup = ref["min_ms"] / vec["min_ms"]
    assert speedup >= MIN_MATERIALIZED_SPEEDUP, (
        f"materialized numpy session only {speedup:.2f}x reference at 1024 "
        f"members (reference {ref['min_ms']:.3f} ms vs numpy "
        f"{vec['min_ms']:.3f} ms); the lazy-materialization path regressed"
    )
