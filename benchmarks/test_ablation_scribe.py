"""Ablation — T-mesh vs a Scribe-style per-group tree (Section 2.6 / 5).

Scribe and Bayeux build one tree per group over a prefix-routing
substrate.  The paper argues such lookup-oriented trees fit rekey
transport poorly: (a) everything funnels through the rendezvous root,
and (b) tree positions ignore the key tree, so splitting over the tree
(which needs per-user downstream state, unlike T-mesh's prefix test)
still duplicates shared encryptions early.  Both effects measured here
on the same group, same tables, same rekey message.
"""

import numpy as np

from repro.core.ids import Id
from repro.core.splitting import run_split_rekey
from repro.core.tmesh import rekey_session
from repro.alm.scribe import build_scribe_group, scribe_multicast
from repro.experiments.common import build_group, build_topology, server_host_of
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.metrics.bandwidth import alm_split_bandwidth
from repro.metrics.latency import alm_latency, tmesh_latency

from .conftest import record, run_once


def _run(num_users: int, seed: int):
    topology = build_topology("gtitm", num_users, seed)
    group = build_group(topology, num_users, seed)
    server = server_host_of(topology)

    tree = ModifiedKeyTree(group.scheme)
    for uid in group.user_ids:
        tree.request_join(uid)
    tree.process_batch()
    rng = np.random.default_rng(seed)
    victims = [
        list(group.user_ids)[int(i)]
        for i in rng.choice(num_users, size=num_users // 4, replace=False)
    ]
    for uid in victims:
        group.leave(uid)
        tree.request_leave(uid)
    message = tree.process_batch()

    # --- T-mesh ---------------------------------------------------------
    t_session = rekey_session(group.server_table, group.tables, topology)
    t_lat = tmesh_latency(t_session, topology)
    t_split = run_split_rekey(t_session, message)

    # --- Scribe over the same tables -------------------------------------
    scribe = build_scribe_group(Id([11, 22, 33, 44, 55]), group.tables)
    s_session = scribe_multicast(scribe, topology, server_host=server)
    s_lat = alm_latency(s_session, topology)
    needed = {
        group.records[uid].host: {
            i for i, e in enumerate(message.encryptions) if e.needed_by(uid)
        }
        for uid in group.user_ids
    }
    s_split = alm_split_bandwidth(
        s_session, needed, message.rekey_cost, topology
    )

    return {
        "msg": message.rekey_cost,
        "tmesh_stress_max": float(t_lat.stress.max()),
        "scribe_stress_max": float(s_lat.stress.max()),
        "tmesh_median_rdp": float(np.median(t_lat.rdp)),
        "scribe_median_rdp": float(np.median(s_lat.rdp)),
        "tmesh_fwd_max": float(
            max(v for k, v in t_split.forwarded.items() if len(k) > 0)
        ),
        "scribe_fwd_max": float(s_split.forwarded.max()),
        "tmesh_fwd_total": float(sum(t_split.forwarded.values())),
        "scribe_fwd_total": float(s_split.forwarded.sum()),
    }


def test_tmesh_beats_scribe_tree(benchmark, scale):
    n = scale.gtitm_users_small
    r = run_once(benchmark, _run, n, 29)
    rendered = (
        f"Ablation — T-mesh vs Scribe-style group tree "
        f"(GT-ITM, {n} users, msg={r['msg']} encryptions)\n"
        f"{'metric':30s} {'T-mesh':>10s} {'Scribe':>10s}\n"
        f"{'max user stress':30s} {r['tmesh_stress_max']:>10.0f} "
        f"{r['scribe_stress_max']:>10.0f}\n"
        f"{'median RDP':30s} {r['tmesh_median_rdp']:>10.2f} "
        f"{r['scribe_median_rdp']:>10.2f}\n"
        f"{'max fwd encryptions (split)':30s} {r['tmesh_fwd_max']:>10.0f} "
        f"{r['scribe_fwd_max']:>10.0f}\n"
        f"{'total fwd encryptions (split)':30s} {r['tmesh_fwd_total']:>10.0f} "
        f"{r['scribe_fwd_total']:>10.0f}"
    )
    record(benchmark, rendered)
    # The rendezvous funnel: Scribe's hottest forwarder beats T-mesh's.
    assert r["scribe_fwd_max"] >= r["tmesh_fwd_max"]
    assert r["scribe_stress_max"] >= r["tmesh_stress_max"]
