"""Fig. 12 — rekey cost as a function of joins and leaves.

Paper (1024 users, 20 runs/point): (a) modified-tree cost grows with
churn; (b) the modified tree costs more than the original WGL/ToN'03 tree
for equal churn (joining u-nodes can only reuse departed positions when
IDs share the first D-1 digits); (c) with the cluster heuristic the cost
drops below the original tree's when the fraction of leaving users is
small.
"""

import numpy as np

from repro.experiments.rekey_cost import default_grid, run_rekey_cost

from .conftest import record, run_once


def test_fig12_rekey_cost(benchmark, scale):
    n = scale.gtitm_users_large
    surface = run_once(
        benchmark,
        run_rekey_cost,
        num_users=n,
        grid=default_grid(n, scale.rekey_cost_grid),
        runs=scale.rekey_cost_runs,
        seed=12,
    )
    record(benchmark, surface.render())
    axis = sorted({p.joins for p in surface.points})

    # (a) cost increases with churn from the empty corner
    assert surface.point(0, 0).modified == 0
    assert surface.point(axis[-1], axis[1]).modified > 0

    # (b) modified >= original on average over non-trivial points
    diffs = [
        p.modified_minus_original
        for p in surface.points
        if (p.joins, p.leaves) != (0, 0) and p.leaves < n
    ]
    assert np.mean(diffs) > 0

    # (c) cluster heuristic beats the original tree when leaves are few
    join_heavy = [p for p in surface.points if p.joins > 0 and p.leaves == 0]
    assert join_heavy
    assert all(p.cluster_minus_original < 0 for p in join_heavy)
