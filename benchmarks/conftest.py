"""Benchmark configuration.

Each benchmark regenerates one table/figure of the paper at the scale
selected by ``REPRO_SCALE`` (``tiny`` / ``small`` / ``paper``; default
``small``).  The drivers are deterministic, so the interesting output is
the *shape* assertions plus the rendered rows recorded in
``benchmark.extra_info`` and printed for ``bench_output.txt``.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import current_scale

_CAPTURE_MANAGER = None


def pytest_configure(config):
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = config.pluginmanager.getplugin("capturemanager")


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ belongs to the ``bench`` lane
    (``pytest benchmarks/ -m bench``), keeping it out of tier-1 runs."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def scale():
    return current_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def record(benchmark, rendered: str, **extra):
    """Stash the figure's rendered rows in the benchmark report and print
    them so ``pytest benchmarks/ | tee bench_output.txt`` captures the
    regenerated rows/series.  Printing happens with pytest's capture
    suspended so the rows reach the terminal/tee for passing tests too."""
    benchmark.extra_info["figure"] = rendered
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    if _CAPTURE_MANAGER is not None:
        with _CAPTURE_MANAGER.global_and_fixture_disabled():
            print("\n" + rendered)
    else:
        print("\n" + rendered)
