"""Fig. 11 — data path latency on the GT-ITM topology, 1024 user joins."""

from repro.experiments.latency_experiments import run_latency_experiment

from .conftest import record, run_once


def test_fig11_data_latency_gtitm_1024(benchmark, scale):
    cmp = run_once(
        benchmark,
        run_latency_experiment,
        "Fig 11",
        "gtitm",
        scale.gtitm_users_large,
        mode="data",
        runs=max(1, scale.latency_runs // 2),
        seed=11,
    )
    record(benchmark, cmp.render(), **cmp.headlines())
    h = cmp.headlines()
    assert h["tmesh_median_delay_ms"] < h["nice_median_delay_ms"] * 1.2
