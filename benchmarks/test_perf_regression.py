"""Perf-regression guard for the micro workloads.

Re-times every *micro* workload from :mod:`repro.perf.workloads` with the
same methodology as ``tools/perf_baseline.py`` and fails when its
**best-of-N** time regresses more than the tolerance (default 75%)
against the ``post`` medians committed in ``BENCH_PR2.json``.  The
minimum is compared (rather than the median) because shared hosts
suffer multi-tens-of-percent ambient load spikes that inflate medians
but rarely every repetition; a genuine code regression raises the
minimum too.

The default tolerance is deliberately loose: the ambient noise floor
on shared hosts measures around ±35% even for best-of-N, while the
optimizations this lane guards are 3x-500x — losing one shows up far
past any plausible tolerance.  Tighten ``REPRO_BENCH_TOLERANCE`` on
quiet dedicated hardware.

Run with the bench lane::

    PYTHONPATH=src pytest benchmarks/test_perf_regression.py -m bench

Knobs:

* ``REPRO_BENCH_TOLERANCE`` — allowed fractional regression (default
  ``0.75``); raise it on machines much slower than the one that produced
  the committed numbers, lower it on quiet dedicated hardware.
* refresh the committed numbers with
  ``PYTHONPATH=src python tools/perf_baseline.py`` after intentional
  changes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.perf.workloads import WORKLOADS, calibrate, measure

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.75"))


def _committed():
    if not BENCH_FILE.exists():
        pytest.skip(f"{BENCH_FILE.name} not committed; run tools/perf_baseline.py")
    return json.loads(BENCH_FILE.read_text())


MICRO_NAMES = [name for name, w in WORKLOADS.items() if w.micro]


@pytest.fixture(scope="module")
def shared_ctx():
    return {}


@pytest.fixture(scope="module")
def machine_scale():
    """How much slower this process is than the machine/moment that
    produced the committed medians, per the calibration spin stored in
    BENCH_PR2.json.  Floored at 1.0 so fast machines don't tighten the
    committed limits."""
    committed = _committed()
    reference = committed.get("calibration")
    if not reference:
        return 1.0
    now = calibrate()
    return max(1.0, now["median_ms"] / reference["median_ms"])


@pytest.mark.parametrize("name", MICRO_NAMES)
def test_micro_workload_not_regressed(name, shared_ctx, machine_scale):
    entry = _committed()["ops"].get(name)
    if not entry or not entry.get("post"):
        pytest.skip(f"no committed post median for {name}")
    committed_ms = entry["post"]["median_ms"]

    workload = WORKLOADS[name]
    fn = workload.setup(shared_ctx)
    fn()  # warm caches the same way the baseline driver does
    now_ms = measure(fn, workload.repeats)["min_ms"]

    limit = committed_ms * machine_scale * (1.0 + TOLERANCE)
    assert now_ms <= limit, (
        f"{name} regressed: best-of-{workload.repeats} {now_ms:.3f} ms vs "
        f"committed median {committed_ms:.3f} ms (machine scale "
        f"{machine_scale:.2f}, +{TOLERANCE:.0%} tolerance = {limit:.3f} ms); "
        f"if intentional, refresh with tools/perf_baseline.py"
    )
