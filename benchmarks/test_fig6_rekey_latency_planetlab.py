"""Fig. 6 — rekey path latency on the PlanetLab topology.

Paper (226 users, 100 runs): T-mesh and NICE have comparable user-stress
distributions; T-mesh application-layer delay is about half of NICE's for
the majority of users; 78% of T-mesh users see RDP < 2 and 95% < 3,
against 23% and 47% for NICE.
"""

from repro.experiments.latency_experiments import run_latency_experiment

from .conftest import record, run_once


def test_fig6_rekey_latency_planetlab(benchmark, scale):
    cmp = run_once(
        benchmark,
        run_latency_experiment,
        "Fig 6",
        "planetlab",
        scale.planetlab_users,
        mode="rekey",
        runs=scale.latency_runs,
        seed=6,
    )
    record(benchmark, cmp.render(), **cmp.headlines())
    h = cmp.headlines()
    # Shape: T-mesh dominates NICE on delay and RDP; stress comparable.
    assert h["tmesh_median_delay_ms"] < h["nice_median_delay_ms"]
    assert h["tmesh_rdp_lt2"] > h["nice_rdp_lt2"]
    assert h["tmesh_rdp_lt3"] >= h["nice_rdp_lt3"]
    assert h["tmesh_p95_stress"] <= 3 * h["nice_p95_stress"] + 1
