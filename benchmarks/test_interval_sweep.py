"""Extension — batch-rekeying interval length vs amortized cost.

Periodic batch rekeying (the regime the paper's system runs in)
amortizes shared path updates across the requests of an interval.  This
benchmark sweeps the interval length under Poisson churn and asserts the
batching economy: the amortized cost per join/leave falls monotonically
as intervals grow, while the absolute per-interval message grows much
slower than linearly.
"""

from repro.experiments.interval_sweep import run_interval_sweep

from .conftest import record, run_once


def test_batching_amortizes_rekey_cost(benchmark, scale):
    sweep = run_once(
        benchmark,
        run_interval_sweep,
        num_users=scale.gtitm_users_small,
        intervals=(8.0, 32.0, 128.0, 512.0),
        rate_per_s=0.4,
        horizon_s=2048.0,
        seed=21,
    )
    record(benchmark, sweep.render())
    per_request = [p.cost_per_request for p in sweep.points]
    assert all(
        earlier >= later
        for earlier, later in zip(per_request, per_request[1:])
    ), per_request
    # batching wins by a large factor across the sweep
    assert per_request[0] > 3 * per_request[-1]
