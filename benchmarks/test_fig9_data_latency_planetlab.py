"""Fig. 9 — data path latency on the PlanetLab topology.

Paper: a random user multicasts a data message; the relative performance
of T-mesh to NICE is similar to the rekey-transport case (data enters
NICE via the sender's cluster leader, bottom-up then top-down).
"""

from repro.experiments.latency_experiments import run_latency_experiment

from .conftest import record, run_once


def test_fig9_data_latency_planetlab(benchmark, scale):
    cmp = run_once(
        benchmark,
        run_latency_experiment,
        "Fig 9",
        "planetlab",
        scale.planetlab_users,
        mode="data",
        runs=scale.latency_runs,
        seed=9,
    )
    record(benchmark, cmp.render(), **cmp.headlines())
    h = cmp.headlines()
    assert h["tmesh_median_delay_ms"] < h["nice_median_delay_ms"] * 1.2
    assert h["tmesh_rdp_lt2"] >= h["nice_rdp_lt2"]
