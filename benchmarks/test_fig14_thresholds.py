"""Fig. 14 — sensitivity of T-mesh latency to D and the delay thresholds.

Paper (PlanetLab, 226 joins): the latency performance of T-mesh is not
sensitive to the various (D, R_1..R_{D-1}) values chosen by the
Section-4.4 heuristic.
"""

from repro.experiments.thresholds import run_threshold_sweep

from .conftest import record, run_once


def test_fig14_threshold_sensitivity(benchmark, scale):
    sweep = run_once(
        benchmark,
        run_threshold_sweep,
        num_users=scale.planetlab_users,
        seed=14,
    )
    record(benchmark, sweep.render())
    assert sweep.max_median_delay_spread() < 2.0
    for variant in sweep.variants:
        assert variant.fraction_rdp_below(3.0) > 0.5
