"""Fig. 10 — data path latency on the GT-ITM topology, 256 user joins."""

from repro.experiments.latency_experiments import run_latency_experiment

from .conftest import record, run_once


def test_fig10_data_latency_gtitm_256(benchmark, scale):
    cmp = run_once(
        benchmark,
        run_latency_experiment,
        "Fig 10",
        "gtitm",
        scale.gtitm_users_small,
        mode="data",
        runs=max(1, scale.latency_runs // 2),
        seed=10,
    )
    record(benchmark, cmp.render(), **cmp.headlines())
    h = cmp.headlines()
    assert h["tmesh_median_delay_ms"] < h["nice_median_delay_ms"] * 1.2
