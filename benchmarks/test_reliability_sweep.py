"""Reliability sweep — rekey delivery under packet loss.

The paper's rekey transport requires fast, reliable delivery of the
bursty rekey message.  This benchmark sweeps per-packet loss rates and
measures, with and without proactive XOR-parity FEC (the ToN'03
mechanism), how many members end an interval with incomplete keys and
therefore need reference-[31]-style unicast recovery from the server.
"""

import numpy as np

from repro.alm.reliable import ReliabilityConfig, ReliableSession
from repro.core.group import SecureGroup
from repro.core.ids import Id, IdScheme
from repro.core.neighbor_table import (
    UserRecord,
    build_consistent_tables,
    build_server_table,
)
from repro.faults import FaultPlan
from repro.keytree.recovery import FecEncoder
from repro.net import TransitStubParams, TransitStubTopology

from .conftest import record, run_once

LOSS_RATES = (0.01, 0.05, 0.15)


def _run(num_users: int, seed: int):
    params = TransitStubParams(
        transit_domains=3, transit_per_domain=4,
        stubs_per_transit=2, stub_size=7,
    )
    rows = []
    for loss in LOSS_RATES:
        for use_fec in (False, True):
            topology = TransitStubTopology(
                num_hosts=num_users + 1, params=params, seed=seed
            )
            group = SecureGroup(topology, server_host=num_users, seed=seed)
            members = [group.join(h) for h in range(num_users)]
            group.end_interval()
            # churn so the next message is non-trivial
            for victim in members[: num_users // 5]:
                group.leave(victim.user_id)
            report = group.end_interval(
                loss_rate=loss,
                fec=FecEncoder(packet_size=2, block_packets=4) if use_fec else None,
                loss_rng=np.random.default_rng(seed + int(loss * 100)),
            )
            recoveries = len(report.incomplete)
            for uid in report.incomplete:
                group.recover_member(uid)
            assert group.verify_member_keys() == []
            rows.append((loss, use_fec, recoveries, report.fec_repaired_blocks))
    return rows


def test_fec_cuts_unicast_recoveries(benchmark, scale):
    n = scale.gtitm_users_small
    rows = run_once(benchmark, _run, n, 27)
    lines = [
        f"Reliability — unicast recoveries vs loss rate (GT-ITM, {n} users)",
        f"{'loss':>6s} {'FEC':>5s} {'recoveries':>11s} {'blocks repaired':>16s}",
    ]
    for loss, use_fec, recoveries, repaired in rows:
        lines.append(
            f"{loss:>6.0%} {'yes' if use_fec else 'no':>5s} "
            f"{recoveries:>11d} {repaired:>16d}"
        )
    record(benchmark, "\n".join(lines))
    by_key = {(loss, fec): rec for loss, fec, rec, _ in rows}
    for loss in LOSS_RATES:
        assert by_key[(loss, True)] <= by_key[(loss, False)]
    # at low loss, FEC should repair nearly everything locally
    assert by_key[(LOSS_RATES[0], True)] <= max(1, n // 20)


# ----------------------------------------------------------------------
# NACK-based reliable T-mesh: delivery ratio and repair overhead vs loss
# ----------------------------------------------------------------------
NACK_LOSS_RATES = (0.0, 0.05, 0.15, 0.25)
NACK_PAYLOADS = 8


def _nack_world(num_users: int, seed: int):
    scheme = IdScheme(3, 4)
    params = TransitStubParams(
        transit_domains=3, transit_per_domain=4,
        stubs_per_transit=2, stub_size=7,
    )
    topology = TransitStubTopology(
        num_hosts=num_users + 1, params=params, seed=seed
    )
    rng = np.random.default_rng(seed)
    id_tuples = set()
    while len(id_tuples) < num_users:
        id_tuples.add(tuple(int(rng.integers(0, 4)) for _ in range(3)))
    records = [
        UserRecord(Id(t), host) for host, t in enumerate(sorted(id_tuples))
    ]
    tables = build_consistent_tables(scheme, records, topology.rtt, k=4)
    server_table = build_server_table(
        scheme, num_users, records, topology.rtt, k=4
    )
    return topology, tables, server_table


def _nack_run(num_users: int, seed: int):
    topology, tables, server_table = _nack_world(num_users, seed)
    payloads = [f"rekey-{i}" for i in range(NACK_PAYLOADS)]
    rows = []
    for loss in NACK_LOSS_RATES:
        for repair in (False, True):
            plan = FaultPlan(seed=seed + int(loss * 100)).drop(loss)
            session = ReliableSession(
                tables,
                server_table,
                topology,
                plan=plan,
                config=ReliabilityConfig(repair_enabled=repair),
            )
            outcome = session.multicast(payloads)
            rows.append(
                (
                    loss,
                    repair,
                    outcome.delivery_ratio,
                    outcome.stats.repair_overhead,
                    outcome.stats.retransmissions,
                    outcome.stats.gave_up,
                )
            )
    return rows


def test_nack_repair_closes_the_loss_gap(benchmark, scale):
    """The reliable T-mesh transport: NACK repair holds delivery at 100%
    across the loss sweep while the unrepaired transport decays; the cost
    is the reported repair overhead."""
    n = scale.gtitm_users_small
    rows = run_once(benchmark, _nack_run, n, 33)
    lines = [
        f"Reliable T-mesh — delivery vs loss rate (GT-ITM, {n} users, "
        f"{NACK_PAYLOADS} payloads)",
        f"{'loss':>6s} {'repair':>7s} {'delivery':>9s} {'overhead':>9s} "
        f"{'retx':>6s} {'gave up':>8s}",
    ]
    for loss, repair, ratio, overhead, retx, gave_up in rows:
        lines.append(
            f"{loss:>6.0%} {'NACK' if repair else 'off':>7s} "
            f"{ratio:>9.1%} {overhead:>9.3f} {retx:>6d} {gave_up:>8d}"
        )
    record(benchmark, "\n".join(lines))
    by_key = {
        (loss, repair): (ratio, overhead, retx, gave_up)
        for loss, repair, ratio, overhead, retx, gave_up in rows
    }
    for loss in NACK_LOSS_RATES:
        ratio_off = by_key[(loss, False)][0]
        ratio_on, overhead_on, _, gave_up_on = by_key[(loss, True)]
        assert ratio_on == 1.0
        assert gave_up_on == 0
        assert ratio_on >= ratio_off
        if loss > 0:
            assert overhead_on > 0.0
    # losses were real: the unrepaired transport decays at the top rate
    assert by_key[(NACK_LOSS_RATES[-1], False)][0] < 1.0
