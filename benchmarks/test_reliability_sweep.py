"""Reliability sweep — rekey delivery under packet loss.

The paper's rekey transport requires fast, reliable delivery of the
bursty rekey message.  This benchmark sweeps per-packet loss rates and
measures, with and without proactive XOR-parity FEC (the ToN'03
mechanism), how many members end an interval with incomplete keys and
therefore need reference-[31]-style unicast recovery from the server.
"""

import numpy as np

from repro.core.group import SecureGroup
from repro.keytree.recovery import FecEncoder
from repro.net import TransitStubParams, TransitStubTopology

from .conftest import record, run_once

LOSS_RATES = (0.01, 0.05, 0.15)


def _run(num_users: int, seed: int):
    params = TransitStubParams(
        transit_domains=3, transit_per_domain=4,
        stubs_per_transit=2, stub_size=7,
    )
    rows = []
    for loss in LOSS_RATES:
        for use_fec in (False, True):
            topology = TransitStubTopology(
                num_hosts=num_users + 1, params=params, seed=seed
            )
            group = SecureGroup(topology, server_host=num_users, seed=seed)
            members = [group.join(h) for h in range(num_users)]
            group.end_interval()
            # churn so the next message is non-trivial
            for victim in members[: num_users // 5]:
                group.leave(victim.user_id)
            report = group.end_interval(
                loss_rate=loss,
                fec=FecEncoder(packet_size=2, block_packets=4) if use_fec else None,
                loss_rng=np.random.default_rng(seed + int(loss * 100)),
            )
            recoveries = len(report.incomplete)
            for uid in report.incomplete:
                group.recover_member(uid)
            assert group.verify_member_keys() == []
            rows.append((loss, use_fec, recoveries, report.fec_repaired_blocks))
    return rows


def test_fec_cuts_unicast_recoveries(benchmark, scale):
    n = scale.gtitm_users_small
    rows = run_once(benchmark, _run, n, 27)
    lines = [
        f"Reliability — unicast recoveries vs loss rate (GT-ITM, {n} users)",
        f"{'loss':>6s} {'FEC':>5s} {'recoveries':>11s} {'blocks repaired':>16s}",
    ]
    for loss, use_fec, recoveries, repaired in rows:
        lines.append(
            f"{loss:>6.0%} {'yes' if use_fec else 'no':>5s} "
            f"{recoveries:>11d} {repaired:>16d}"
        )
    record(benchmark, "\n".join(lines))
    by_key = {(loss, fec): rec for loss, fec, rec, _ in rows}
    for loss in LOSS_RATES:
        assert by_key[(loss, True)] <= by_key[(loss, False)]
    # at low loss, FEC should repair nearly everything locally
    assert by_key[(LOSS_RATES[0], True)] <= max(1, n // 20)
