"""Peak-RSS guard for the scale-ladder rungs (docs/PERFORMANCE.md).

Re-measures the peak resident set size of the 10k and 100k rungs — each
in a fresh child process, because ``ru_maxrss`` is a process-lifetime
high-water mark — and fails when a peak regresses past the bounds
committed in ``BENCH_PR9.json``.  Memory is far more stable than timing,
so the default tolerance is +50% (``REPRO_RSS_TOLERANCE``): the failure
mode this lane guards against is structural — per-member Python objects
sneaking back into the streaming path turn tens of MB into GB, not into
+50%.

The 1M rung is opt-in (``REPRO_SCALE_1M=1``): it additionally asserts
the hard < 2 GB ceiling from the scale-ladder design, which is what
makes a million-member rekey session viable on a laptop.

Run with the bench lane::

    PYTHONPATH=src pytest benchmarks/test_scale_rss.py -m bench
    REPRO_SCALE_1M=1 PYTHONPATH=src pytest benchmarks/test_scale_rss.py -m bench

Refresh the committed numbers after intentional changes::

    PYTHONPATH=src python tools/perf_baseline.py --out BENCH_PR9.json \
        --rss --only rekey_session_10k rekey_session_10k_numpy \
        rekey_session_100k_stream rekey_session_1m_stream
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.perf.rss import measure_peak_rss
from repro.perf.workloads import WORKLOADS

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
TOLERANCE = float(os.environ.get("REPRO_RSS_TOLERANCE", "0.5"))

#: The guarded rungs: every scale workload with a committed RSS bound.
GUARDED = [
    "rekey_session_10k",
    "rekey_session_10k_numpy",
    "rekey_session_100k_stream",
]

#: Hard ceiling for the opt-in 1M rung (docs/PERFORMANCE.md).
ONE_M_CEILING_BYTES = 2 * 1024**3


def _committed_rss(name: str) -> int:
    if not BENCH_FILE.exists():
        pytest.skip(
            f"{BENCH_FILE.name} not committed; refresh with "
            "tools/perf_baseline.py --rss"
        )
    entry = json.loads(BENCH_FILE.read_text())["ops"].get(name)
    if not entry or not entry.get("rss"):
        pytest.skip(f"no committed RSS bound for {name}")
    return int(entry["rss"]["peak_rss_bytes"])


def _mib(n: int) -> str:
    return f"{n / 1024**2:.1f} MiB"


@pytest.mark.parametrize("name", GUARDED)
def test_scale_rung_rss_not_regressed(name):
    committed = _committed_rss(name)
    assert name in WORKLOADS
    peak = int(measure_peak_rss(name)["peak_rss_bytes"])
    limit = int(committed * (1.0 + TOLERANCE))
    assert peak <= limit, (
        f"{name} peak RSS regressed: {_mib(peak)} vs committed "
        f"{_mib(committed)} (+{TOLERANCE:.0%} tolerance = {_mib(limit)}); "
        "if intentional, refresh BENCH_PR9.json with "
        "tools/perf_baseline.py --rss"
    )


@pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE_1M"),
    reason="1M rung is opt-in: set REPRO_SCALE_1M=1",
)
def test_one_million_member_rung():
    """The headline claim of the scale ladder: a 1M-member rekey session
    completes under the streaming plan with peak RSS < 2 GB and no
    materialized all-pairs RTT matrix (the synthesized topology refuses
    to build one past ``max_dense_hosts``)."""
    name = "rekey_session_1m_stream"
    peak = int(measure_peak_rss(name)["peak_rss_bytes"])
    assert peak < ONE_M_CEILING_BYTES, (
        f"1M rung peak RSS {_mib(peak)} breaches the "
        f"{_mib(ONE_M_CEILING_BYTES)} ceiling"
    )
    committed = _committed_rss(name)
    limit = int(committed * (1.0 + TOLERANCE))
    assert peak <= limit, (
        f"{name} peak RSS regressed: {_mib(peak)} vs committed "
        f"{_mib(committed)} (+{TOLERANCE:.0%} tolerance = {_mib(limit)})"
    )
