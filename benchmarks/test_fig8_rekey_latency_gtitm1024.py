"""Fig. 8 — rekey path latency on the GT-ITM topology, 1024 user joins.

Paper: same relative ordering as Figs. 6-7 at four times the group size.
"""

from repro.experiments.latency_experiments import run_latency_experiment

from .conftest import record, run_once


def test_fig8_rekey_latency_gtitm_1024(benchmark, scale):
    cmp = run_once(
        benchmark,
        run_latency_experiment,
        "Fig 8",
        "gtitm",
        scale.gtitm_users_large,
        mode="rekey",
        runs=max(1, scale.latency_runs // 2),
        seed=8,
    )
    record(benchmark, cmp.render(), **cmp.headlines())
    h = cmp.headlines()
    assert h["tmesh_median_delay_ms"] < h["nice_median_delay_ms"]
    assert h["tmesh_rdp_lt2"] > h["nice_rdp_lt2"]
