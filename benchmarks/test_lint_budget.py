"""Runtime budget guard for the static-analysis pass.

The lint gate runs at commit time and in every CI job, so its latency is
a developer-facing cost: if a new rule (or a CFG/dataflow change in
``repro.lint.flow``) makes the full-tree run crawl, the gate stops being
something people run before every commit.  This guard re-times the
full-tree engine run — all rules, flow analyses included — and fails
when the **best-of-3** wall time exceeds a committed budget.

The budget is deliberately generous (the measured run sits around 1.7 s
for ~110 files on the reference host; the budget is 15 s) because shared
hosts carry multi-x ambient load, while the regressions this lane exists
to catch — an accidentally quadratic dataflow worklist, a cache that
stopped caching, a rule that re-parses every module — are order-of-
magnitude blowups that sail past any plausible tolerance.

``time.perf_counter`` is the sanctioned duration timer
(docs/STATIC_ANALYSIS.md, ``determinism-wall-clock``).

Run with the bench lane::

    PYTHONPATH=src pytest benchmarks/test_lint_budget.py -m bench

Knob: ``REPRO_LINT_BUDGET_SECONDS`` overrides the budget on hosts much
slower than the reference machine.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.lint import Baseline, LintEngine

from .conftest import record, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

BUDGET_SECONDS = float(os.environ.get("REPRO_LINT_BUDGET_SECONDS", "15.0"))
REPETITIONS = 3


def _full_tree_run() -> tuple[float, int]:
    """One full-tree engine run; returns (seconds, files scanned)."""
    start = time.perf_counter()
    result = LintEngine([SRC_ROOT]).run(Baseline())
    return time.perf_counter() - start, result.files_scanned


def test_full_tree_lint_stays_within_budget(benchmark):
    timings = []
    files = 0
    for _ in range(REPETITIONS):
        seconds, files = _full_tree_run()
        timings.append(seconds)
    best = min(timings)

    def report():
        return best

    run_once(benchmark, report)
    record(
        benchmark,
        f"lint budget: best-of-{REPETITIONS} {best:.3f}s over {files} "
        f"file(s), budget {BUDGET_SECONDS:.1f}s",
        best_seconds=best,
        files_scanned=files,
        budget_seconds=BUDGET_SECONDS,
    )

    assert files > 50, (
        f"engine scanned only {files} files — the budget guard is no "
        "longer timing the real tree"
    )
    assert best <= BUDGET_SECONDS, (
        f"full-tree lint best-of-{REPETITIONS} took {best:.2f}s, over the "
        f"{BUDGET_SECONDS:.1f}s budget; a rule or flow analysis has "
        "regressed (set REPRO_LINT_BUDGET_SECONDS on slow hosts)"
    )
