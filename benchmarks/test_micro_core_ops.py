"""Micro-benchmarks of the hot protocol operations.

Unlike the figure benchmarks (one expensive run each), these exercise the
tight loops many times so pytest-benchmark's statistics are meaningful:
the FORWARD fan-out, the Theorem-2 predicate, batch rekeying, and ID
assignment for a single joiner.
"""

import numpy as np
import pytest

import time

from repro.core.ids import Id, PAPER_SCHEME
from repro.core.splitting import next_hop_needs, run_split_rekey
from repro.core.tmesh import plan_session, rekey_session
from repro.experiments.common import build_group, build_topology
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.keytree.original_tree import OriginalKeyTree


@pytest.fixture(scope="module")
def world():
    topology = build_topology("gtitm", 128, seed=20)
    group = build_group(topology, 128, seed=20)
    tree = ModifiedKeyTree(group.scheme)
    for uid in group.user_ids:
        tree.request_join(uid)
    tree.process_batch()
    rng = np.random.default_rng(20)
    for i in rng.choice(128, size=32, replace=False):
        tree.request_leave(list(group.user_ids)[int(i)])
    message = tree.process_batch()
    return topology, group, message


def test_bench_tmesh_session(benchmark, world):
    topology, group, _ = world
    session = benchmark(
        rekey_session, group.server_table, group.tables, topology
    )
    assert len(session.receipts) == group.num_users


def test_bench_split_predicate(benchmark):
    hop = Id([17, 3, 200, 9, 1])
    encryption_ids = [Id([17, 3]), Id([18]), Id([17, 3, 200, 9, 1]), Id([])]

    def many():
        hits = 0
        for _ in range(250):
            for e in encryption_ids:
                hits += next_hop_needs(e, hop, 2)
        return hits

    assert benchmark(many) > 0


def test_bench_split_session(benchmark, world):
    topology, group, message = world
    session = rekey_session(group.server_table, group.tables, topology)
    split = benchmark(run_split_rekey, session, message)
    assert split.received


def test_bench_modified_tree_batch(benchmark):
    ids = [
        Id([a, b, 0, 0, 0])
        for a in range(16)
        for b in range(16)
    ]

    def batch():
        tree = ModifiedKeyTree(PAPER_SCHEME)
        for uid in ids:
            tree.request_join(uid)
        tree.process_batch()
        for uid in ids[::4]:
            tree.request_leave(uid)
        return tree.process_batch().rekey_cost

    assert benchmark(batch) > 0


def test_bench_original_tree_batch(benchmark):
    def batch():
        tree = OriginalKeyTree(degree=4)
        tree.initialize_balanced(list(range(256)))
        for u in range(64):
            tree.request_leave(u)
        for j in range(64):
            tree.request_join(f"n{j}")
        return tree.process_batch(np.random.default_rng(0)).rekey_cost

    assert benchmark(batch) > 0


@pytest.fixture(scope="module")
def world_1024():
    topology = build_topology("gtitm", 1024, seed=20)
    group = build_group(topology, 1024, seed=20)
    session = rekey_session(group.server_table, group.tables, topology)
    return topology, group, session


def test_bench_user_stress_indexed_1024(benchmark, world_1024):
    """The src-indexed user_stress sweep at 1024 users, plus a proof that
    the index changed the complexity class: one full sweep is O(E) via the
    index versus O(U * E) via the reference scan."""
    _, group, session = world_1024

    def indexed_sweep():
        total = 0
        for member in session.receipts:
            total += session.user_stress(member)
        return total

    indexed_total = benchmark(indexed_sweep)

    t0 = time.perf_counter()
    scan_total = sum(
        session.user_stress_scan(member) for member in session.receipts
    )
    scan_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    indexed_sweep()
    indexed_time = time.perf_counter() - t0

    assert indexed_total == scan_total
    # The asymptotic gap at 1024 users is ~three orders of magnitude; 5x
    # keeps the assertion robust on slow or noisy machines.
    assert scan_time > 5 * indexed_time, (
        f"index no faster than scan: {indexed_time:.6f}s vs {scan_time:.6f}s"
    )
    benchmark.extra_info["scan_over_indexed"] = scan_time / indexed_time


def test_bench_planned_rekey_session_1024(benchmark, world_1024):
    """Rekey fan-out with a reusable SessionPlan (periodic rekeying with
    unchanged tables — the paper's steady-state case)."""
    topology, group, reference = world_1024
    plan = plan_session(group.server_table, group.tables)
    session = benchmark(
        rekey_session, group.server_table, group.tables, topology, plan=plan
    )
    assert session.receipts == reference.receipts


def test_bench_single_join_id_assignment(benchmark, world):
    topology, group, _ = world

    def one_join_cost():
        outcome = group.assigner.determine_prefix(
            100,
            topology.access_rtt(100),
            topology,
            group.query,
            group.records[next(iter(group.records))],
        )
        return len(outcome.determined_prefix)

    benchmark(one_join_cost)
