"""Micro-benchmarks of the hot protocol operations.

Unlike the figure benchmarks (one expensive run each), these exercise the
tight loops many times so pytest-benchmark's statistics are meaningful:
the FORWARD fan-out, the Theorem-2 predicate, batch rekeying, and ID
assignment for a single joiner.
"""

import numpy as np
import pytest

from repro.core.ids import Id, PAPER_SCHEME
from repro.core.splitting import next_hop_needs, run_split_rekey
from repro.core.tmesh import rekey_session
from repro.experiments.common import build_group, build_topology
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.keytree.original_tree import OriginalKeyTree


@pytest.fixture(scope="module")
def world():
    topology = build_topology("gtitm", 128, seed=20)
    group = build_group(topology, 128, seed=20)
    tree = ModifiedKeyTree(group.scheme)
    for uid in group.user_ids:
        tree.request_join(uid)
    tree.process_batch()
    rng = np.random.default_rng(20)
    for i in rng.choice(128, size=32, replace=False):
        tree.request_leave(list(group.user_ids)[int(i)])
    message = tree.process_batch()
    return topology, group, message


def test_bench_tmesh_session(benchmark, world):
    topology, group, _ = world
    session = benchmark(
        rekey_session, group.server_table, group.tables, topology
    )
    assert len(session.receipts) == group.num_users


def test_bench_split_predicate(benchmark):
    hop = Id([17, 3, 200, 9, 1])
    encryption_ids = [Id([17, 3]), Id([18]), Id([17, 3, 200, 9, 1]), Id([])]

    def many():
        hits = 0
        for _ in range(250):
            for e in encryption_ids:
                hits += next_hop_needs(e, hop, 2)
        return hits

    assert benchmark(many) > 0


def test_bench_split_session(benchmark, world):
    topology, group, message = world
    session = rekey_session(group.server_table, group.tables, topology)
    split = benchmark(run_split_rekey, session, message)
    assert split.received


def test_bench_modified_tree_batch(benchmark):
    ids = [
        Id([a, b, 0, 0, 0])
        for a in range(16)
        for b in range(16)
    ]

    def batch():
        tree = ModifiedKeyTree(PAPER_SCHEME)
        for uid in ids:
            tree.request_join(uid)
        tree.process_batch()
        for uid in ids[::4]:
            tree.request_leave(uid)
        return tree.process_batch().rekey_cost

    assert benchmark(batch) > 0


def test_bench_original_tree_batch(benchmark):
    def batch():
        tree = OriginalKeyTree(degree=4)
        tree.initialize_balanced(list(range(256)))
        for u in range(64):
            tree.request_leave(u)
        for j in range(64):
            tree.request_join(f"n{j}")
        return tree.process_batch(np.random.default_rng(0)).rekey_cost

    assert benchmark(batch) > 0


def test_bench_single_join_id_assignment(benchmark, world):
    topology, group, _ = world

    def one_join_cost():
        outcome = group.assigner.determine_prefix(
            100,
            topology.access_rtt(100),
            topology,
            group.query,
            group.records[next(iter(group.records))],
        )
        return len(outcome.determined_prefix)

    benchmark(one_join_cost)
